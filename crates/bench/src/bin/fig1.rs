//! Fig. 1 — startup latencies `T0(p)` of six MPI collective operations
//! over the three multicomputers, 2 to 128 nodes.
//!
//! The paper approximates `T0` by the timing of a short message (§3); we
//! use the 4-byte point of the grid, exactly as the figure does.

use bench::{machines, symbol, timed, Cli, SIX_OPS};
use harness::{SweepBuilder, PAPER_NODE_COUNTS};
use report::{GnuplotFigure, LogChart, Series, Table};

fn main() {
    let cli = Cli::parse();
    let data = timed("fig1 sweep", || {
        SweepBuilder::new()
            .machines(machines())
            .ops(SIX_OPS)
            .message_sizes([4])
            .node_counts(PAPER_NODE_COUNTS)
            .protocol(cli.protocol())
            .run()
            .expect("sweep")
    });
    cli.maybe_write_csv("fig1", &data);

    for op in SIX_OPS {
        let mut chart = LogChart::new(
            format!(
                "FIGURE 1 ({}) — startup latency T0(p) [us]",
                op.paper_name()
            ),
            "p, machine size",
            "T0 (us)",
        );
        let mut table = Table::new(["p", "SP2 (us)", "Paragon (us)", "T3D (us)"]);
        let series: Vec<Vec<(usize, f64)>> = machines()
            .iter()
            .map(|m| data.series_vs_nodes(m.name(), op, 4))
            .collect();
        for (mach, pts) in machines().iter().zip(&series) {
            chart = chart.series(Series::new(
                mach.name(),
                symbol(mach.name()),
                pts.iter().map(|&(p, t)| (p as f64, t)).collect(),
            ));
        }
        for &p in &PAPER_NODE_COUNTS {
            let cell = |s: &Vec<(usize, f64)>| {
                s.iter()
                    .find(|&&(sp, _)| sp == p)
                    .map(|&(_, t)| format!("{t:.0}"))
                    .unwrap_or_else(|| "-".into())
            };
            table.push_row([
                p.to_string(),
                cell(&series[0]),
                cell(&series[1]),
                cell(&series[2]),
            ]);
        }
        println!("\n{}", chart.render());
        print!("{}", table.render());

        // With --out DIR, also emit a gnuplot script per panel.
        if let Some(dir) = &cli.out {
            let mut fig = GnuplotFigure::new(
                format!("Fig. 1 ({}) — startup latency T0(p)", op.paper_name()),
                "p, machine size",
                "T0 (us)",
            );
            for (mach, pts) in machines().iter().zip(&series) {
                fig = fig.series(Series::new(
                    mach.name(),
                    symbol(mach.name()),
                    pts.iter().map(|&(p, t)| (p as f64, t)).collect(),
                ));
            }
            let path = format!("{dir}/fig1_{}.gp", op.paper_name().replace(' ', "_"));
            if let Err(e) = std::fs::write(&path, fig.render()) {
                eprintln!("failed to write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
    }
}
