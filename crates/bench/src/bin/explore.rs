//! Interactive query tool: time one collective configuration and show
//! everything the library knows about it — the measured value, the
//! paper's Table-3 prediction, the startup/transmission split, traffic
//! counters, and the message timeline.
//!
//! ```sh
//! cargo run -p bench --release --bin explore -- \
//!     --machine t3d --op alltoall --nodes 64 --bytes 65536
//! ```

use bench::machine_id;
use harness::{measure, Protocol};
use mpisim::{Machine, OpClass, Rank};
use perfmodel::paper;
use report::{Timeline, TimelineMessage};

struct Args {
    machine: Machine,
    op: OpClass,
    nodes: usize,
    bytes: u32,
    timeline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut machine = Machine::t3d();
    let mut op = OpClass::Alltoall;
    let mut nodes = 16usize;
    let mut bytes = 1_024u32;
    let mut timeline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or(format!("{a} needs a value"));
        match a.as_str() {
            "--machine" => {
                machine = match value()?.to_lowercase().as_str() {
                    "sp2" => Machine::sp2(),
                    "t3d" => Machine::t3d(),
                    "paragon" => Machine::paragon(),
                    other => return Err(format!("unknown machine {other}")),
                }
            }
            "--op" => {
                let name = value()?.to_lowercase();
                op = match name.as_str() {
                    "bcast" | "broadcast" => OpClass::Bcast,
                    "alltoall" | "total-exchange" => OpClass::Alltoall,
                    "scatter" => OpClass::Scatter,
                    "gather" => OpClass::Gather,
                    "scan" => OpClass::Scan,
                    "reduce" => OpClass::Reduce,
                    "barrier" => OpClass::Barrier,
                    other => return Err(format!("unknown operation {other}")),
                };
            }
            "--nodes" => nodes = value()?.parse().map_err(|e| format!("bad nodes: {e}"))?,
            "--bytes" => bytes = value()?.parse().map_err(|e| format!("bad bytes: {e}"))?,
            "--timeline" => timeline = true,
            "--help" | "-h" => {
                return Err(
                    "usage: explore --machine sp2|t3d|paragon --op <collective> \
                     --nodes N --bytes M [--timeline]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Args {
        machine,
        op,
        nodes,
        bytes,
        timeline,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let Args {
        machine,
        op,
        nodes,
        bytes,
        timeline,
    } = args;
    let bytes = if op == OpClass::Barrier { 0 } else { bytes };

    let comm = match machine.communicator(nodes) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    println!(
        "{} — {} of {} B over {} nodes ({})",
        machine.name(),
        op.paper_name(),
        bytes,
        nodes,
        machine.spec().topology.build(nodes).describe()
    );

    // Paper-methodology measurement.
    let meas = measure(&comm, op, bytes, &Protocol::paper()).expect("measure");
    println!(
        "\nmeasured (paper methodology): {:.1} us  (min {:.1}, mean {:.1} across ranks)",
        meas.time_us, meas.min_time_us, meas.mean_time_us
    );

    // Published prediction, if this is a paper machine/op.
    if let Some(f) = machine_id(machine.name()).and_then(|id| paper::table3(id, op)) {
        let pred = f.predict_us(bytes, nodes);
        println!(
            "paper's Table 3 predicts:     {:.1} us  (T0 {:.1} + D {:.1}; sim/paper = {:.2})",
            pred,
            f.startup_us(nodes),
            f.transmission_us(bytes, nodes),
            meas.time_us / pred.max(1e-9),
        );
    }

    // Cold-start run with diagnostics.
    let schedule = comm.schedule(op, Rank(0), bytes).expect("schedule");
    let out = comm.run_diagnosed(&schedule).expect("run");
    println!(
        "cold-start single run:        {:.1} us;  {} messages, {} payload bytes",
        out.rank_segment_time(0, (0..nodes).max_by_key(|&r| out.finish[0][r]).unwrap_or(0))
            .as_micros_f64(),
        out.messages,
        out.bytes,
    );
    if let Some(&(link, busy)) = out.link_loads.first() {
        println!(
            "hottest link: l{link} busy {:.1} us across {} active links",
            busy.as_micros_f64(),
            out.link_loads.len()
        );
    }
    if meas.aggregated_bytes() > 0 {
        if let Some(r) = meas.aggregated_bandwidth_mb_s(0.0) {
            println!("aggregated bandwidth at this point: {r:.0} MB/s (no startup subtracted)");
        }
    }

    if timeline {
        let tl = Timeline::new("message timeline (cold start)", nodes).messages(
            out.trace.iter().map(|m| TimelineMessage {
                src: m.src,
                dst: m.dst,
                posted: m.posted.as_micros_f64(),
                delivered: m.delivered.as_micros_f64(),
            }),
        );
        println!("\n{}", tl.render());
    }
}
