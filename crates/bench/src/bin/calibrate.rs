//! Calibration report: simulated `T(m, p)` against the paper's Table 3
//! predictions over a reference grid. Ratios near 1.0 mean the simulator
//! lands on the published surface; the report is used to tune the
//! software-cost tables in `netmodel::machines` (DESIGN.md §7).

use bench::{machines, ratio_to_paper, timed, Cli, SIX_OPS};
use harness::{measure, Protocol};
use mpisim::OpClass;
use report::Table;

fn main() {
    let cli = Cli::parse();
    let protocol = if cli.quick {
        Protocol::quick()
    } else {
        // Calibration wants low noise more than full fidelity.
        let mut p = Protocol::paper();
        p.repetitions = 2;
        p
    };

    let grid_m = [4u32, 1_024, 65_536];
    let grid_p = [2usize, 8, 32, 64];

    for machine in machines() {
        let mut table = Table::new(["Operation", "m\\p", "2", "8", "32", "64"]);
        let ops: Vec<OpClass> = SIX_OPS.iter().copied().chain([OpClass::Barrier]).collect();
        timed(machine.name(), || {
            for op in ops {
                let m_values: &[u32] = if op == OpClass::Barrier {
                    &[0]
                } else {
                    &grid_m
                };
                for &m in m_values {
                    let mut cells = vec![op.paper_name().to_string(), format!("{m}")];
                    for &p in &grid_p {
                        if p > machine.spec().max_nodes {
                            cells.push("-".into());
                            continue;
                        }
                        let comm = machine.communicator(p).expect("size in range");
                        let meas = measure(&comm, op, m, &protocol).expect("measure");
                        let cell = match ratio_to_paper(machine.name(), op, m, p, meas.time_us) {
                            Some(r) => format!("{r:.2}"),
                            None => format!("[{:.0}us]", meas.time_us),
                        };
                        cells.push(cell);
                    }
                    table.push_row(cells);
                }
            }
        });
        println!(
            "\n== {} — sim/published ratio (1.00 = exact) ==",
            machine.name()
        );
        print!("{}", table.render());
    }
}
