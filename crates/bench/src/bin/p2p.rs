//! Point-to-point characterization (companion to the collective study).
//!
//! The paper notes that prior MPI benchmarking focused on point-to-point
//! paths, and §9 contrasts Hockney's asymptotic bandwidth with the
//! aggregated-bandwidth metric. This binary produces the classical
//! Hockney view of all three machines — ping latency vs message size,
//! fitted `t0`, `r∞`, and `n½` — for nearest-neighbour and
//! cross-machine-diameter node pairs.

use bench::{machines, timed, Cli};
use harness::measure_pingpong;
use mpisim::Rank;
use perfmodel::fit_hockney;
use report::Table;

const SIZES: [u32; 8] = [4, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144];

fn main() {
    let _cli = Cli::parse();
    println!("Point-to-point characterization (Hockney model)\n");

    let mut fits = Table::new([
        "Machine",
        "pair",
        "t0 (us)",
        "r_inf (MB/s)",
        "n_1/2 (B)",
        "r^2",
    ]);
    let cli_protocol = harness::Protocol::quick();
    timed("p2p sweep", || {
        for machine in machines() {
            let p = machine.spec().max_nodes.min(64);
            let comm = machine.communicator(p).expect("size");
            for (label, dst) in [("neighbour", 1usize), ("far corner", p - 1)] {
                let measured = measure_pingpong(&comm, Rank(0), Rank(dst), &SIZES, &cli_protocol)
                    .expect("pingpong");
                let mut samples = Vec::new();
                let mut rows = Table::new(["m (B)", "latency (us)", "MB/s"]);
                for s in measured {
                    let (m, us) = (s.bytes, s.one_way_us);
                    samples.push((m, us));
                    rows.push_row([
                        m.to_string(),
                        format!("{us:.2}"),
                        format!("{:.1}", f64::from(m) / us),
                    ]);
                }
                println!("-- {} ({label}, rank 0 -> {dst}) --", machine.name());
                print!("{}", rows.render());
                println!();
                if let Some(f) = fit_hockney(&samples) {
                    fits.push_row([
                        machine.name().to_string(),
                        label.to_string(),
                        format!("{:.1}", f.t0_us),
                        format!("{:.1}", f.r_inf_mb_s),
                        format!("{:.0}", f.n_half),
                        format!("{:.4}", f.r2),
                    ]);
                }
            }
        }
    });
    println!("== Fitted Hockney parameters ==");
    print!("{}", fits.render());
    println!(
        "\nExpected territory: SP2 r_inf near its 40 MB/s link; T3D the highest\n\
         r_inf and the lowest t0; Paragon in between with NX-dominated t0."
    );
}
