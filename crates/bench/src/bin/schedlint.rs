//! schedlint — static schedule verification sweep.
//!
//! Runs the `schedcheck` analyzer (happens-before graph, match
//! ambiguity, volume/coverage conservation, critical-path bounds) over
//! every shipped vendor schedule: all seven collectives × three
//! machines × a ladder of communicator sizes and message lengths —
//! without executing a single schedule.
//!
//! Flags:
//!
//! - `--all`    full sweep (p up to 128, three message sizes); the
//!   default is a reduced grid for interactive use
//! - `--deny`   exit nonzero if any sweep point has a finding (CI gate)
//! - `--json`   machine-readable output (findings + `schedcheck.*`
//!   metrics snapshot) instead of the text tables
//! - `--threads N`  shard the sweep across N workers (0 = auto-detect).
//!   Static checks are pure functions of the schedule, so every point
//!   runs fully parallel; verdicts and metrics merge in canonical
//!   sweep order, making all output byte-identical to `--threads 1`
//! - `--demo-broken`  additionally analyze four deliberately broken
//!   broadcast variants, one per lint class (see EXPERIMENTS.md)

use collectives::select::Algorithm;
use collectives::{build, vendor_algorithm, vendor_schedule, Rank, Schedule, Step};
use netmodel::{MachineId, OpClass};
use obs::{Json, MetricsRegistry};
use report::Table;
use schedcheck::{depth_bound, verify_expected, Expectations, Report};

struct Opts {
    all: bool,
    deny: bool,
    json: bool,
    demo: bool,
    threads: usize,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        all: false,
        deny: false,
        json: false,
        demo: false,
        threads: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--all" => o.all = true,
            "--deny" => o.deny = true,
            "--json" => o.json = true,
            "--demo-broken" => o.demo = true,
            "--threads" => {
                o.threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a non-negative integer (0 = auto)");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!("options: --all  --deny  --json  --threads N  --demo-broken");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other}"),
        }
    }
    o
}

/// One sweep point's verdict, kept for the JSON rendering.
struct Point {
    machine: MachineId,
    class: OpClass,
    p: usize,
    bytes: u32,
    report: Report,
}

/// The canonical sweep grid: machine → op → p → m, barrier at one size.
fn sweep_specs(opts: &Opts) -> Vec<(MachineId, OpClass, usize, u32)> {
    let node_counts: &[usize] = if opts.all {
        &[2, 3, 4, 8, 16, 17, 32, 64, 128]
    } else {
        &[2, 4, 8, 16]
    };
    let sizes: &[u32] = if opts.all {
        &[16, 1024, 65536]
    } else {
        &[1024]
    };

    let mut specs = Vec::new();
    for machine in MachineId::ALL {
        for class in OpClass::COLLECTIVES {
            for &p in node_counts {
                // Barrier carries no payload; one size suffices.
                let ms: &[u32] = if class == OpClass::Barrier {
                    &sizes[..1]
                } else {
                    sizes
                };
                for &bytes in ms {
                    specs.push((machine, class, p, bytes));
                }
            }
        }
    }
    specs
}

/// Runs the static analyzer over the grid, sharded across workers.
/// Each point is a pure function of its `(machine, op, p, m)` spec, so
/// reports compute fully parallel; metrics are then recorded serially
/// in canonical sweep order, keeping the registry byte-identical to a
/// serial run for any thread count.
fn sweep(opts: &Opts, metrics: &mut MetricsRegistry) -> Vec<Point> {
    let specs = sweep_specs(opts);
    let (reports, _) = harness::map_indexed(
        specs.len(),
        opts.threads,
        |i| {
            let (machine, class, p, bytes) = specs[i];
            let s = vendor_schedule(machine, class, p, Rank(0), bytes)
                .expect("vendor table covers all seven collectives");
            verify_expected(
                &s,
                &Expectations {
                    algorithm: vendor_algorithm(machine, class),
                    root: Rank(0),
                    bytes,
                },
            )
        },
        &|_, _| {},
    );
    specs
        .into_iter()
        .zip(reports)
        .map(|((machine, class, p, bytes), report)| {
            metrics.counter("schedcheck.points", 1);
            metrics.counter("schedcheck.findings", report.findings.len() as u64);
            metrics.observe("schedcheck.depth", report.stats.crit.depth as u64);
            metrics.observe("schedcheck.messages", report.stats.messages as u64);
            metrics.observe(
                "schedcheck.recv_fanin",
                report.stats.crit.max_recv_fanin as u64,
            );
            Point {
                machine,
                class,
                p,
                bytes,
                report,
            }
        })
        .collect()
}

/// Closed-form depth bound as a human-readable formula.
fn bound_formula(alg: Algorithm, class: OpClass) -> &'static str {
    match (alg, class) {
        (Algorithm::Hardware, _) => "0",
        (Algorithm::Linear, OpClass::Scan) | (Algorithm::Ring, _) => "p-1",
        (Algorithm::Linear, _) => "1",
        (Algorithm::Pairwise, OpClass::Alltoall) => "p-1",
        (Algorithm::Tree, _) => "2*ceil(log2 p)",
        (Algorithm::ScatterAllgather, _) => "ceil(log2 p) + p-1",
        (Algorithm::Pipelined, _) => "-",
        _ => "ceil(log2 p)",
    }
}

fn render_text(points: &[Point], metrics: &MetricsRegistry) {
    println!("schedlint — static verification of all shipped vendor schedules\n");
    let mut table = Table::new([
        "Machine",
        "Operation",
        "Algorithm",
        "Points",
        "Max depth",
        "Depth bound",
        "Max fan-in",
        "Findings",
    ]);
    for machine in MachineId::ALL {
        for class in OpClass::COLLECTIVES {
            let group: Vec<&Point> = points
                .iter()
                .filter(|pt| pt.machine == machine && pt.class == class)
                .collect();
            let max_p = group.iter().map(|pt| pt.p).max().unwrap_or(0);
            let alg = vendor_algorithm(machine, class);
            let bound = depth_bound(alg, class, max_p)
                .map(|b| format!("<= {b} ({})", bound_formula(alg, class)))
                .unwrap_or_else(|| "-".into());
            table.push_row([
                machine.to_string(),
                class.paper_name().to_string(),
                format!("{alg:?}"),
                group.len().to_string(),
                group
                    .iter()
                    .map(|pt| pt.report.stats.crit.depth)
                    .max()
                    .unwrap_or(0)
                    .to_string(),
                bound,
                group
                    .iter()
                    .map(|pt| pt.report.stats.crit.max_recv_fanin)
                    .max()
                    .unwrap_or(0)
                    .to_string(),
                group
                    .iter()
                    .map(|pt| pt.report.findings.len())
                    .sum::<usize>()
                    .to_string(),
            ]);
        }
    }
    print!("{}", table.render());

    for pt in points.iter().filter(|pt| !pt.report.is_clean()) {
        println!(
            "\n{}/{}/p={}/m={}:",
            pt.machine,
            pt.class.key(),
            pt.p,
            pt.bytes
        );
        for f in &pt.report.findings {
            println!("  [{}] {f}", f.code());
        }
    }

    println!("\nschedcheck.* metrics:");
    let mut mt = Table::new(["Metric", "Kind", "Value"]);
    for row in metrics.rows() {
        mt.push_row(row);
    }
    print!("{}", mt.render());
}

fn point_json(pt: &Point) -> Json {
    Json::object([
        ("machine", Json::Str(pt.machine.to_string())),
        ("op", Json::Str(pt.class.key().to_string())),
        ("p", Json::UInt(pt.p as u64)),
        ("bytes", Json::UInt(u64::from(pt.bytes))),
        ("depth", Json::UInt(pt.report.stats.crit.depth as u64)),
        ("messages", Json::UInt(pt.report.stats.messages as u64)),
        ("total_bytes", Json::UInt(pt.report.stats.total_bytes)),
        (
            "findings",
            Json::Array(
                pt.report
                    .findings
                    .iter()
                    .map(|f| {
                        Json::object([
                            ("code", Json::Str(f.code().to_string())),
                            ("message", Json::Str(f.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Rebuilds `s` with `edit` applied to each `(rank, step index, step)`;
/// returning `None` drops the step.
fn rebuild(s: &Schedule, mut edit: impl FnMut(Rank, usize, Step) -> Option<Step>) -> Schedule {
    let mut out = Schedule::new(s.class(), s.ranks());
    for (r, prog) in s.iter() {
        for (i, &step) in prog.iter().enumerate() {
            if let Some(st) = edit(r, i, step) {
                out.push(r, st);
            }
        }
    }
    out
}

/// Four deliberately broken 8-rank broadcasts, one per lint class.
fn demos() -> Vec<(&'static str, Schedule, Expectations)> {
    let exp = |algorithm| Expectations {
        algorithm,
        root: Rank(0),
        bytes: 1024,
    };
    let base = || build(Algorithm::Binomial, OpClass::Bcast, 8, Rank(0), 1024).expect("bcast");

    // (a) Reversed tree edge: the root *receives* from its first child
    // before sending anything — a two-rank wait-for cycle.
    let mut done = false;
    let reversed = rebuild(&base(), |r, _, step| match step {
        Step::Send { to, bytes } if r == Rank(0) && !done => {
            done = true;
            Some(Step::Recv { from: to, bytes })
        }
        other => Some(other),
    });

    // (b) Lost subtree: the root's last send never happens, so that
    // child waits forever and the volume falls short of m(p-1).
    let last_root_send = base()
        .iter()
        .find(|(r, _)| *r == Rank(0))
        .map(|(_, prog)| {
            prog.iter()
                .rposition(|st| matches!(st, Step::Send { .. }))
                .expect("root sends")
        })
        .expect("root program");
    let lost = rebuild(&base(), |r, i, step| {
        if r == Rank(0) && i == last_root_send {
            None
        } else {
            Some(step)
        }
    });

    // (c) Serialized chain passed off as a binomial tree: volume is
    // exactly m(p-1), it runs fine, but depth p-1 blows the log2 bound.
    let mut chain = Schedule::new(OpClass::Bcast, 8);
    for r in 0..8usize {
        if r > 0 {
            chain.push(
                Rank(r),
                Step::Recv {
                    from: Rank(r - 1),
                    bytes: 1024,
                },
            );
        }
        if r < 7 {
            chain.push(
                Rank(r),
                Step::Send {
                    to: Rank(r + 1),
                    bytes: 1024,
                },
            );
        }
    }

    // (d) Pipelined broadcast with a non-multiple payload: the 4 KB
    // segments and the short tail segment race for the same receives.
    let pipelined =
        build(Algorithm::Pipelined, OpClass::Bcast, 4, Rank(0), 10_000).expect("pipelined bcast");

    vec![
        ("reversed-edge deadlock", reversed, exp(Algorithm::Binomial)),
        ("lost subtree", lost, exp(Algorithm::Binomial)),
        ("serialized chain", chain, exp(Algorithm::Binomial)),
        (
            "pipelined tail segment",
            pipelined,
            Expectations {
                algorithm: Algorithm::Pipelined,
                root: Rank(0),
                bytes: 10_000,
            },
        ),
    ]
}

fn main() {
    let opts = parse_opts();
    let mut metrics = MetricsRegistry::new();
    let points = sweep(&opts, &mut metrics);
    let total_findings: usize = points.iter().map(|pt| pt.report.findings.len()).sum();
    metrics.gauge(
        "schedcheck.clean",
        if total_findings == 0 { 1.0 } else { 0.0 },
    );

    let demo_reports: Vec<(&str, Report)> = if opts.demo {
        demos()
            .into_iter()
            .map(|(name, s, exp)| (name, verify_expected(&s, &exp)))
            .collect()
    } else {
        Vec::new()
    };

    if opts.json {
        let dirty: Vec<Json> = points
            .iter()
            .filter(|pt| !pt.report.is_clean())
            .map(point_json)
            .collect();
        let doc = Json::object([
            (
                "sweep",
                Json::object([
                    ("points", Json::UInt(points.len() as u64)),
                    ("findings", Json::UInt(total_findings as u64)),
                    ("clean", Json::Bool(total_findings == 0)),
                    ("dirty_points", Json::Array(dirty)),
                ]),
            ),
            ("metrics", metrics.snapshot()),
            (
                "demos",
                Json::Array(
                    demo_reports
                        .iter()
                        .map(|(name, report)| {
                            Json::object([
                                ("name", Json::Str((*name).to_string())),
                                ("depth", Json::UInt(report.stats.crit.depth as u64)),
                                ("total_bytes", Json::UInt(report.stats.total_bytes)),
                                (
                                    "findings",
                                    Json::Array(
                                        report
                                            .findings
                                            .iter()
                                            .map(|f| {
                                                Json::object([
                                                    ("code", Json::Str(f.code().to_string())),
                                                    ("message", Json::Str(f.to_string())),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.to_string_pretty());
    } else {
        render_text(&points, &metrics);
        if !demo_reports.is_empty() {
            println!("\nDeliberately broken broadcasts (--demo-broken):");
            for (name, report) in &demo_reports {
                println!("\n  {name} (depth {}):", report.stats.crit.depth);
                if report.is_clean() {
                    println!("    clean");
                }
                for f in &report.findings {
                    println!("    [{}] {f}", f.code());
                }
            }
        }
        println!(
            "\n{} points, {} findings{}",
            points.len(),
            total_findings,
            if total_findings == 0 {
                " — clean"
            } else {
                ""
            }
        );
    }

    if opts.deny && total_findings > 0 {
        std::process::exit(1);
    }
}
