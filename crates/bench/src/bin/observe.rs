//! Observability driver: run one (machine, collective, m, p) point under
//! full instrumentation and emit
//!
//! * a Chrome Trace Event JSON file (open in Perfetto or
//!   `chrome://tracing`) with one track per rank and flow arrows for
//!   every message,
//! * a metrics snapshot JSON with the run manifest,
//! * a text report: manifest header, metrics table, and an ASCII
//!   link-utilization heatmap.
//!
//! ```text
//! cargo run -p bench --bin observe -- --machine t3d --op bcast -p 64 -m 4096
//! ```
//!
//! `--profile` additionally enables the desim engine's self-profiling
//! (events/sec, calendar-queue depth and occupancy, wall-clock), which
//! then appears in the metrics snapshot under `engine.prof.*`.
//!
//! `--suite` runs the fixed 21-point perfgate suite (all seven
//! collectives × three machines at the representative `(m, p)`) instead
//! of a single point, writing one trace + metrics + canonical
//! `*.record.json` run-record triple per point plus a `dataset.csv`
//! measured over the same grid. Every file is a pure function of the
//! simulation seed, so the whole output directory is byte-identical for
//! any `--threads N` — the CI determinism job compares a serial run
//! against `--threads 4` with `tracediff`, which explains the first
//! divergent event structurally when the gate trips.
//!
//! `--trace-cap N` caps recorded message traces at N entries
//! (messages beyond the cap are counted as dropped; `tracediff`
//! refuses to certify runs with drops as identical).

use harness::{Protocol, SweepBuilder};
use mpisim::comm::RunOptions;
use mpisim::{observe, Machine, OpClass, Rank};
use obs::MetricsRegistry;

use bench::cli::{Accept, PointCli};

fn usage() -> ! {
    eprintln!(
        "usage: observe {} [--out DIR] [--profile] [--trace-cap N] [--elide]\n       observe --suite [--threads N] [--out DIR] [--trace-cap N] [--elide]",
        bench::cli::POINT_USAGE
    );
    std::process::exit(2);
}

fn parse_args() -> (PointCli, bool) {
    let mut cli = PointCli::default();
    let mut profile = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match cli.accept(&a, || args.next()) {
            Accept::Consumed => continue,
            Accept::Invalid => usage(),
            Accept::Unknown => {}
        }
        match a.as_str() {
            "--profile" => profile = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
    }
    if !cli.selection_ok() {
        usage();
    }
    (cli, profile)
}

/// One shade per link, busy time normalized against the hottest link.
fn heatmap(loads: &[(usize, desim::SimDuration)], links: usize) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut busy_us = vec![0.0f64; links];
    for &(id, b) in loads {
        if let Some(cell) = busy_us.get_mut(id) {
            *cell = b.as_micros_f64();
        }
    }
    let max = busy_us.iter().cloned().fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str(&format!(
        "link-utilization heatmap ({links} links, '@' = hottest {max:.0} us, ' ' = idle)\n"
    ));
    for (row, chunk) in busy_us.chunks(64).enumerate() {
        let cells: String = chunk
            .iter()
            .map(|&b| {
                if max <= 0.0 {
                    ' '
                } else {
                    let idx = ((b / max) * (SHADES.len() - 1) as f64).round() as usize;
                    SHADES[idx.min(SHADES.len() - 1)]
                }
            })
            .collect();
        out.push_str(&format!("  l{:<5} |{cells}|\n", row * 64));
    }
    out
}

/// Stable per-point file stem, e.g. `observe_ibm_sp2_alltoall_p64_m4096`.
fn stem(machine: &Machine, op: OpClass, p: usize, bytes: u32) -> String {
    format!(
        "observe_{}_{}_p{}_m{}",
        machine.name().to_ascii_lowercase().replace(' ', "_"),
        op.key(),
        p,
        bytes
    )
}

/// One fully instrumented point, rendered to its output documents.
struct ObservedPoint {
    out: mpisim::exec::ExecOutcome,
    trace: obs::ChromeTrace,
    snapshot: String,
    reg: MetricsRegistry,
    manifest: obs::RunManifest,
    links: usize,
}

/// Runs one point under full instrumentation and renders its trace +
/// metrics documents. Pure: same inputs produce the same bytes.
fn observe_point(
    machine: &Machine,
    op: OpClass,
    p: usize,
    m: u32,
    options: RunOptions,
) -> ObservedPoint {
    let bytes = if op == OpClass::Barrier { 0 } else { m };
    let comm = machine.communicator(p).expect("communicator size");
    let schedule = comm.schedule(op, Rank(0), bytes).expect("schedule build");
    let (out, observed) = comm
        .run_observed(&[&schedule], options)
        .expect("observed execution");

    let wire = machine.wire_config();
    let manifest = obs::RunManifest::new(machine.name())
        .param("op", op.key())
        .param("p", p)
        .param("m_bytes", bytes)
        .param("start", "cold, no skew")
        .param("link_contention", wire.link_contention)
        .param("nic_serialization", wire.nic_serialization)
        .param("wormhole", wire.wormhole)
        .param(
            "segment_bytes",
            wire.segment_bytes
                .map_or("none".to_string(), |s| s.to_string()),
        );

    let mut reg = MetricsRegistry::new();
    observe::export_metrics(&out, &observed, &mut reg);
    let trace = observe::chrome_trace(machine.name(), &out, &observed);
    let snapshot = observe::snapshot(&manifest, &reg).to_string_pretty();
    let links = observed.net.link_bytes.len();
    ObservedPoint {
        out,
        trace,
        snapshot,
        reg,
        manifest,
        links,
    }
}

/// The fixed 21-point suite in canonical order, run under full
/// instrumentation with `threads` workers; every output file is written
/// in canonical order from the merged results.
fn run_suite(out_dir: &str, threads: usize, trace_cap: Option<usize>, elide: bool) {
    let suite = bench::perfgate::default_suite();
    std::fs::create_dir_all(out_dir).expect("create output directory");

    let (rendered, stats) = harness::map_indexed(
        suite.len(),
        threads,
        |i| {
            let pt = &suite[i];
            let obs = observe_point(
                &pt.machine,
                pt.op,
                pt.nodes,
                pt.bytes,
                RunOptions {
                    trace_limit: trace_cap,
                    elide,
                    ..RunOptions::default()
                },
            );
            // A second, fully instrumented run builds the canonical
            // run record that `tracediff` compares structurally.
            let record = bench::diffsuite::record_point(
                &pt.machine,
                pt.op,
                pt.nodes,
                pt.bytes,
                mpisim::TieBreakPolicy::InsertionOrder,
                trace_cap,
                elide,
            );
            let file_stem = stem(&pt.machine, pt.op, pt.nodes, pt.bytes);
            (
                file_stem,
                obs.trace.to_json_string(),
                obs.snapshot,
                record.to_json_string(),
                obs.trace.len(),
            )
        },
        &|_, _| {},
    );
    for (file_stem, trace_json, metrics_json, record_json, events) in &rendered {
        std::fs::write(format!("{out_dir}/{file_stem}.trace.json"), trace_json)
            .expect("write trace");
        std::fs::write(format!("{out_dir}/{file_stem}.metrics.json"), metrics_json)
            .expect("write metrics");
        std::fs::write(format!("{out_dir}/{file_stem}.record.json"), record_json)
            .expect("write record");
        println!("wrote {out_dir}/{file_stem}.trace.json ({events} events)");
    }

    // The same grid measured through the harness methodology: the
    // Dataset side of the serial-vs-parallel byte-equality gate.
    let ops: Vec<OpClass> = suite
        .iter()
        .map(|pt| pt.op)
        .collect::<Vec<_>>()
        .into_iter()
        .fold(Vec::new(), |mut acc, op| {
            if !acc.contains(&op) {
                acc.push(op);
            }
            acc
        });
    let machines: Vec<Machine> = {
        let mut seen: Vec<Machine> = Vec::new();
        for pt in &suite {
            if !seen.iter().any(|m| m.name() == pt.machine.name()) {
                seen.push(pt.machine.clone());
            }
        }
        seen
    };
    let data = SweepBuilder::new()
        .machines(machines)
        .ops(ops)
        .message_sizes([bench::perfgate::SUITE_BYTES])
        .node_counts([bench::perfgate::SUITE_NODES])
        .protocol(Protocol::quick())
        .threads(threads)
        .run()
        .expect("suite sweep");
    std::fs::write(format!("{out_dir}/dataset.csv"), data.to_csv()).expect("write dataset");
    println!(
        "wrote {out_dir}/dataset.csv ({} points, {} workers, {:.0}% utilization)",
        data.len(),
        stats.threads,
        100.0 * stats.utilization()
    );
}

fn main() {
    let (cli, profile) = parse_args();
    if cli.suite {
        run_suite(cli.out_dir(), cli.threads, cli.trace_cap, cli.elide);
        return;
    }

    let machine = cli.machine.as_ref().expect("checked in parse_args");
    let op = cli.op.expect("checked in parse_args");
    let bytes = if op == OpClass::Barrier { 0 } else { cli.m };
    let options = RunOptions {
        profile,
        trace_limit: cli.trace_cap,
        elide: cli.elide,
        ..RunOptions::default()
    };
    let point = observe_point(machine, op, cli.p, cli.m, options);

    let file_stem = stem(machine, op, cli.p, bytes);
    std::fs::create_dir_all(cli.out_dir()).expect("create output directory");
    let trace_path = format!("{}/{file_stem}.trace.json", cli.out_dir());
    let metrics_path = format!("{}/{file_stem}.metrics.json", cli.out_dir());

    std::fs::write(&trace_path, point.trace.to_json_string()).expect("write trace");
    std::fs::write(&metrics_path, &point.snapshot).expect("write metrics");

    println!("{}", report::metrics::render(&point.manifest, &point.reg));
    println!();
    println!(
        "{}",
        heatmap(
            &point
                .out
                .link_loads
                .iter()
                .map(|&(id, b)| (id, b))
                .collect::<Vec<_>>(),
            point.links
        )
    );
    println!("wrote {trace_path} ({} events)", point.trace.len());
    println!("wrote {metrics_path} ({} metrics)", point.reg.len());
    println!("open the trace at https://ui.perfetto.dev (drag & drop the .trace.json)");
}
