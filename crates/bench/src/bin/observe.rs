//! Observability driver: run one (machine, collective, m, p) point under
//! full instrumentation and emit
//!
//! * a Chrome Trace Event JSON file (open in Perfetto or
//!   `chrome://tracing`) with one track per rank and flow arrows for
//!   every message,
//! * a metrics snapshot JSON with the run manifest,
//! * a text report: manifest header, metrics table, and an ASCII
//!   link-utilization heatmap.
//!
//! ```text
//! cargo run -p bench --bin observe -- --machine t3d --op bcast -p 64 -m 4096
//! ```
//!
//! `--profile` additionally enables the desim engine's self-profiling
//! (events/sec, calendar-queue depth and occupancy, wall-clock), which
//! then appears in the metrics snapshot under `engine.prof.*`.

use mpisim::comm::RunOptions;
use mpisim::{observe, Machine, OpClass, Rank};
use obs::MetricsRegistry;

struct Args {
    machine: Machine,
    op: OpClass,
    p: usize,
    m: u32,
    out_dir: String,
    profile: bool,
}

fn parse_machine(name: &str) -> Option<Machine> {
    match name.to_ascii_lowercase().as_str() {
        "sp2" => Some(Machine::sp2()),
        "t3d" => Some(Machine::t3d()),
        "paragon" => Some(Machine::paragon()),
        _ => None,
    }
}

fn parse_op(name: &str) -> Option<OpClass> {
    let lower = name.to_ascii_lowercase();
    OpClass::ALL
        .into_iter()
        .find(|op| op.key() == lower || op.paper_name().to_ascii_lowercase() == lower)
}

fn usage() -> ! {
    eprintln!(
        "usage: observe --machine <sp2|t3d|paragon> --op <bcast|scatter|gather|reduce|scan|alltoall|barrier> -p <nodes> -m <bytes> [--out DIR] [--profile]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut machine = None;
    let mut op = None;
    let mut p = 64usize;
    let mut m = 4096u32;
    let mut out_dir = ".".to_string();
    let mut profile = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--machine" => machine = parse_machine(&value()),
            "--op" => op = parse_op(&value()),
            "-p" | "--nodes" => p = value().parse().unwrap_or_else(|_| usage()),
            "-m" | "--bytes" => m = value().parse().unwrap_or_else(|_| usage()),
            "--out" => out_dir = value(),
            "--profile" => profile = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
    }
    let Some(machine) = machine else { usage() };
    let Some(op) = op else { usage() };
    Args {
        machine,
        op,
        p,
        m,
        out_dir,
        profile,
    }
}

/// One shade per link, busy time normalized against the hottest link.
fn heatmap(loads: &[(usize, desim::SimDuration)], links: usize) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut busy_us = vec![0.0f64; links];
    for &(id, b) in loads {
        if let Some(cell) = busy_us.get_mut(id) {
            *cell = b.as_micros_f64();
        }
    }
    let max = busy_us.iter().cloned().fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str(&format!(
        "link-utilization heatmap ({links} links, '@' = hottest {max:.0} us, ' ' = idle)\n"
    ));
    for (row, chunk) in busy_us.chunks(64).enumerate() {
        let cells: String = chunk
            .iter()
            .map(|&b| {
                if max <= 0.0 {
                    ' '
                } else {
                    let idx = ((b / max) * (SHADES.len() - 1) as f64).round() as usize;
                    SHADES[idx.min(SHADES.len() - 1)]
                }
            })
            .collect();
        out.push_str(&format!("  l{:<5} |{cells}|\n", row * 64));
    }
    out
}

fn main() {
    let args = parse_args();
    let machine = &args.machine;
    let bytes = if args.op == OpClass::Barrier {
        0
    } else {
        args.m
    };
    let comm = machine.communicator(args.p).expect("communicator size");
    let schedule = comm
        .schedule(args.op, Rank(0), bytes)
        .expect("schedule build");
    let options = RunOptions {
        profile: args.profile,
        ..RunOptions::default()
    };
    let (out, observed) = comm
        .run_observed(&[&schedule], options)
        .expect("observed execution");

    let wire = machine.wire_config();
    let manifest = obs::RunManifest::new(machine.name())
        .param("op", args.op.key())
        .param("p", args.p)
        .param("m_bytes", bytes)
        .param("start", "cold, no skew")
        .param("link_contention", wire.link_contention)
        .param("nic_serialization", wire.nic_serialization)
        .param("wormhole", wire.wormhole)
        .param(
            "segment_bytes",
            wire.segment_bytes
                .map_or("none".to_string(), |s| s.to_string()),
        );

    let mut reg = MetricsRegistry::new();
    observe::export_metrics(&out, &observed, &mut reg);

    let stem = format!(
        "observe_{}_{}_p{}_m{}",
        args.machine.name().to_ascii_lowercase().replace(' ', "_"),
        args.op.key(),
        args.p,
        bytes
    );
    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let trace_path = format!("{}/{stem}.trace.json", args.out_dir);
    let metrics_path = format!("{}/{stem}.metrics.json", args.out_dir);

    let trace = observe::chrome_trace(machine.name(), &out, &observed);
    std::fs::write(&trace_path, trace.to_json_string()).expect("write trace");
    let snapshot = observe::snapshot(&manifest, &reg);
    std::fs::write(&metrics_path, snapshot.to_string_pretty()).expect("write metrics");

    println!("{}", report::metrics::render(&manifest, &reg));
    println!();
    let links = observed.net.link_bytes.len();
    println!(
        "{}",
        heatmap(
            &out.link_loads
                .iter()
                .map(|&(id, b)| (id, b))
                .collect::<Vec<_>>(),
            links
        )
    );
    println!("wrote {trace_path} ({} events)", trace.len());
    println!("wrote {metrics_path} ({} metrics)", reg.len());
    println!("open the trace at https://ui.perfetto.dev (drag & drop the .trace.json)");
}
