//! Message-timeline visualization: execute one collective with tracing
//! enabled and render the per-rank message flow. Makes the algorithm
//! structure visible — the binomial broadcast's tree cascade, the linear
//! scatter's root serialization, the dissemination barrier's rounds.

use bench::Cli;
use mpisim::{Machine, OpClass, Rank};
use report::{Timeline, TimelineMessage};

fn show(machine: &Machine, op: OpClass, p: usize, bytes: u32) {
    let comm = machine.communicator(p).expect("size");
    let schedule = comm.schedule(op, Rank(0), bytes).expect("schedule");
    let (outcome, trace) = comm.run_traced(&schedule).expect("run");
    let timeline = Timeline::new(
        format!(
            "{} — {} of {} B on {} nodes (T = {})",
            machine.name(),
            op.paper_name(),
            bytes,
            p,
            outcome.time()
        ),
        p,
    )
    .messages(trace.iter().map(|m| TimelineMessage {
        src: m.src,
        dst: m.dst,
        posted: m.posted.as_micros_f64(),
        delivered: m.delivered.as_micros_f64(),
    }));
    println!("\n{}", timeline.render());
}

fn main() {
    let _cli = Cli::parse();
    let t3d = Machine::t3d();
    let sp2 = Machine::sp2();
    show(&t3d, OpClass::Bcast, 16, 4_096);
    show(&sp2, OpClass::Scatter, 12, 4_096);
    show(&sp2, OpClass::Barrier, 8, 0);
    show(&t3d, OpClass::Alltoall, 8, 1_024);
    show(&t3d, OpClass::Scan, 12, 1_024);
}
