//! The paper's headline numbers (§1, §4, §5, §8), measured on the
//! simulator and compared against the published values:
//!
//! * T3D hardwired barrier ≈ 3 µs, ≥30× faster than SP2/Paragon;
//! * T3D 64-node startup latencies for the six collectives;
//! * SP2 total exchange of 64 KB over 64 nodes ≈ 317 ms;
//! * 64-node total-exchange aggregated bandwidths 1.745 / 0.879 /
//!   0.818 GB/s (T3D / Paragon / SP2);
//! * all collectives with 64 KB over 64 nodes complete within
//!   (5.12 ms, 675 ms).

use bench::{timed, Cli, SIX_OPS};
use harness::{measure, SweepBuilder};
use mpisim::{Machine, OpClass};
use perfmodel::{bandwidth_series, paper};
use report::Table;

fn main() {
    let cli = Cli::parse();
    let protocol = cli.protocol();

    // --- Barrier headline ---
    let barrier_us: Vec<(String, f64)> = timed("barriers", || {
        [Machine::sp2(), Machine::paragon(), Machine::t3d()]
            .iter()
            .map(|m| {
                let comm = m.communicator(64).expect("64 nodes");
                let meas = measure(&comm, OpClass::Barrier, 0, &protocol).expect("measure");
                (m.name().to_string(), meas.time_us)
            })
            .collect()
    });
    println!("\n== Barrier synchronization at 64 nodes ==");
    let mut t = Table::new(["Machine", "simulated (us)", "paper"]);
    for (name, us) in &barrier_us {
        let paper_note = match name.as_str() {
            "Cray T3D" => format!("~{} us (hardwired)", paper::T3D_BARRIER_US),
            _ => "software barrier".to_string(),
        };
        t.push_row([name.clone(), format!("{us:.2}"), paper_note]);
    }
    print!("{}", t.render());
    let t3d = barrier_us.iter().find(|(n, _)| n == "Cray T3D").unwrap().1;
    let others_min = barrier_us
        .iter()
        .filter(|(n, _)| n != "Cray T3D")
        .map(|&(_, us)| us)
        .fold(f64::MAX, f64::min);
    println!(
        "speedup over best software barrier: {:.0}x (paper claims at least 30x)",
        others_min / t3d
    );

    // --- T3D 64-node startup latencies ---
    println!("\n== T3D startup latencies at 64 nodes (short-message proxy) ==");
    let comm = Machine::t3d().communicator(64).expect("64 nodes");
    let mut t = Table::new(["Operation", "simulated (us)", "paper (us)", "ratio"]);
    timed("t3d latencies", || {
        for (op, published) in paper::T3D_64_NODE_LATENCIES_US {
            let meas = measure(&comm, op, 4, &protocol).expect("measure");
            t.push_row([
                op.paper_name().to_string(),
                format!("{:.0}", meas.time_us),
                format!("{published:.0}"),
                format!("{:.2}", meas.time_us / published),
            ]);
        }
    });
    print!("{}", t.render());

    // --- SP2 64 KB / 64-node total exchange ---
    let comm = Machine::sp2().communicator(64).expect("64 nodes");
    let sp2_a2a = timed("sp2 alltoall", || {
        measure(&comm, OpClass::Alltoall, 65_536, &protocol).expect("measure")
    });
    println!(
        "\n== SP2 total exchange, 64 KB x 64 nodes ==\n\
         simulated {:.0} ms, paper {:.0} ms (ratio {:.2}); total volume {} MB",
        sp2_a2a.time_us / 1000.0,
        paper::SP2_ALLTOALL_64KB_64N_MS,
        sp2_a2a.time_us / 1000.0 / paper::SP2_ALLTOALL_64KB_64N_MS,
        sp2_a2a.aggregated_bytes() / 1_000_000,
    );

    // --- Aggregated bandwidths at 64 nodes ---
    println!("\n== Aggregated bandwidth, 64-node total exchange ==");
    let data = timed("bandwidth sweep", || {
        SweepBuilder::new()
            .ops([OpClass::Alltoall])
            .message_sizes([4, 1_024, 16_384, 65_536])
            .node_counts([2, 4, 8, 16, 32, 64])
            .protocol(protocol.clone())
            .run()
            .expect("sweep")
    });
    let mut t = Table::new(["Machine", "simulated (GB/s)", "paper (GB/s)", "ratio"]);
    for (id, published) in paper::ALLTOALL_64_BANDWIDTH_GB_S {
        let machine = Machine::from_id(id);
        let series = bandwidth_series(&data, machine.name(), OpClass::Alltoall).expect("fit");
        let sim = series
            .iter()
            .find(|b| b.nodes == 64)
            .map(|b| b.mb_s / 1000.0)
            .unwrap_or(f64::NAN);
        t.push_row([
            machine.name().to_string(),
            format!("{sim:.3}"),
            format!("{published:.3}"),
            format!("{:.2}", sim / published),
        ]);
    }
    print!("{}", t.render());

    // --- 64 KB / 64-node completion-time range ---
    println!("\n== All collectives, 64 KB x 64 nodes: completion range ==");
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    timed("range sweep", || {
        for machine in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
            let comm = machine.communicator(64).expect("64 nodes");
            for op in SIX_OPS {
                let meas = measure(&comm, op, 65_536, &protocol).expect("measure");
                lo = lo.min(meas.time_us);
                hi = hi.max(meas.time_us);
            }
        }
    });
    println!(
        "simulated range ({:.2} ms, {:.0} ms); paper reports (5.12 ms, 675 ms)",
        lo / 1000.0,
        hi / 1000.0
    );
}
