//! Fig. 2 — collective messaging times `T(m, 32)` of six MPI collective
//! operations as a function of the message length, on 32 nodes.

use bench::{machines, symbol, timed, Cli, SIX_OPS};
use harness::{SweepBuilder, PAPER_MESSAGE_SIZES};
use report::{LogChart, Series, Table};

fn main() {
    let cli = Cli::parse();
    let data = timed("fig2 sweep", || {
        SweepBuilder::new()
            .machines(machines())
            .ops(SIX_OPS)
            .message_sizes(PAPER_MESSAGE_SIZES)
            .node_counts([32])
            .protocol(cli.protocol())
            .run()
            .expect("sweep")
    });
    cli.maybe_write_csv("fig2", &data);

    for op in SIX_OPS {
        let mut chart = LogChart::new(
            format!(
                "FIGURE 2 ({}) — T(m, 32) vs message length [us]",
                op.paper_name()
            ),
            "m, message length (bytes)",
            "T (us)",
        );
        let mut table = Table::new(["m (B)", "SP2 (us)", "Paragon (us)", "T3D (us)"]);
        let series: Vec<Vec<(u32, f64)>> = machines()
            .iter()
            .map(|m| data.series_vs_bytes(m.name(), op, 32))
            .collect();
        for (mach, pts) in machines().iter().zip(&series) {
            chart = chart.series(Series::new(
                mach.name(),
                symbol(mach.name()),
                pts.iter().map(|&(m, t)| (f64::from(m), t)).collect(),
            ));
        }
        for &m in &PAPER_MESSAGE_SIZES {
            let cell = |s: &Vec<(u32, f64)>| {
                s.iter()
                    .find(|&&(sm, _)| sm == m)
                    .map(|&(_, t)| format!("{t:.0}"))
                    .unwrap_or_else(|| "-".into())
            };
            table.push_row([
                m.to_string(),
                cell(&series[0]),
                cell(&series[1]),
                cell(&series[2]),
            ]);
        }
        println!("\n{}", chart.render());
        print!("{}", table.render());
    }
}
