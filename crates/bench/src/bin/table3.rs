//! Table 3 — closed-form timing expressions for the seven collective
//! operations on the three machines, fitted from the full simulated
//! `T(m, p)` grid with the paper's §3 procedure, printed beside the
//! published rows.

use bench::{machine_id, machines, timed, Cli, SIX_OPS};
use harness::{SweepBuilder, PAPER_MESSAGE_SIZES, PAPER_NODE_COUNTS};
use mpisim::OpClass;
use perfmodel::{fit_surface, paper};
use report::Table;

fn main() {
    let cli = Cli::parse();
    let data = timed("table3 sweep", || {
        SweepBuilder::new()
            .machines(machines())
            .ops(SIX_OPS.iter().copied().chain([OpClass::Barrier]))
            .message_sizes(PAPER_MESSAGE_SIZES)
            .node_counts(PAPER_NODE_COUNTS)
            .protocol(cli.protocol())
            .run()
            .expect("sweep")
    });
    cli.maybe_write_csv("table3", &data);

    println!("\nTABLE 3 — fitted timing expressions T(m,p) = T0(p) + D(m,p)·m  [us; m in bytes]");
    let mut table = Table::new([
        "Operation",
        "Machine",
        "Fitted (this work)",
        "Published (paper)",
    ]);
    for op in SIX_OPS.iter().copied().chain([OpClass::Barrier]) {
        for mach in machines() {
            let fitted = fit_surface(&data, mach.name(), op).expect("fit");
            let published = machine_id(mach.name())
                .and_then(|id| paper::table3(id, op))
                .map(|f| f.to_string())
                .unwrap_or_else(|| "-".into());
            table.push_row([
                op.paper_name().to_string(),
                mach.name().to_string(),
                if op == OpClass::Barrier {
                    fitted.startup.to_string()
                } else {
                    fitted.to_string()
                },
                published,
            ]);
        }
    }
    print!("{}", table.render());

    // Startup-growth summary (§8): O(log p) for barrier/scan/reduce/
    // broadcast, O(p) for gather/scatter/total exchange.
    println!("\nStartup growth families (fitted vs expected):");
    let mut growth = Table::new(["Operation", "Expected", "SP2", "Paragon", "T3D"]);
    for op in SIX_OPS.iter().copied().chain([OpClass::Barrier]) {
        let mut row = vec![
            op.paper_name().to_string(),
            if op.startup_is_logarithmic() {
                "O(log p)".to_string()
            } else {
                "O(p)".to_string()
            },
        ];
        for mach in machines() {
            let f = fit_surface(&data, mach.name(), op).expect("fit");
            row.push(format!("O({})", f.startup.growth.symbol().replace(' ', "")));
        }
        growth.push_row(row);
    }
    print!("{}", growth.render());
}
