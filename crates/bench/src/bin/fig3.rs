//! Fig. 3 — collective messaging times `T(m, p)` as a function of
//! machine size, for short (16 B) and long (64 KB) messages, seven
//! panels (the six collectives plus the barrier in panel g).

use bench::{machines, symbol, timed, Cli, SIX_OPS};
use harness::{Dataset, SweepBuilder, PAPER_NODE_COUNTS};
use mpisim::OpClass;
use report::{LogChart, Series, Table};

fn panel(data: &Dataset, op: OpClass, sizes: &[u32]) {
    let mut chart = LogChart::new(
        format!(
            "FIGURE 3 ({}) — T(m, p) vs machine size; short = 16 B, long = 64 KB",
            op.paper_name()
        ),
        "p, machine size",
        "T (us)",
    );
    let mut table = Table::new([
        "p".to_string(),
        "SP2 short".into(),
        "Paragon short".into(),
        "T3D short".into(),
        "SP2 long".into(),
        "Paragon long".into(),
        "T3D long".into(),
    ]);
    let mut all: Vec<Vec<(usize, f64)>> = Vec::new();
    for &m in sizes {
        for mach in machines() {
            let pts = data.series_vs_nodes(mach.name(), op, m);
            let sym = if m > 1000 {
                symbol(mach.name()).to_ascii_uppercase()
            } else {
                symbol(mach.name())
            };
            chart = chart.series(Series::new(
                format!("{} {}B", mach.name(), m),
                sym,
                pts.iter().map(|&(p, t)| (p as f64, t)).collect(),
            ));
            all.push(pts);
        }
    }
    for &p in &PAPER_NODE_COUNTS {
        let mut row = vec![p.to_string()];
        for s in &all {
            row.push(
                s.iter()
                    .find(|&&(sp, _)| sp == p)
                    .map(|&(_, t)| format!("{t:.0}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.push_row(row);
    }
    println!("\n{}", chart.render());
    print!("{}", table.render());
}

fn main() {
    let cli = Cli::parse();
    let data = timed("fig3 sweep", || {
        SweepBuilder::new()
            .machines(machines())
            .ops(SIX_OPS.iter().copied().chain([OpClass::Barrier]))
            .message_sizes([16, 65_536])
            .node_counts(PAPER_NODE_COUNTS)
            .protocol(cli.protocol())
            .run()
            .expect("sweep")
    });
    cli.maybe_write_csv("fig3", &data);

    for op in SIX_OPS {
        panel(&data, op, &[16, 65_536]);
    }
    // Panel (g): barrier — no message length.
    let mut chart = LogChart::new(
        "FIGURE 3 (g) — Barrier time vs machine size",
        "p, machine size",
        "T (us)",
    );
    let mut table = Table::new(["p", "SP2 (us)", "Paragon (us)", "T3D (us)"]);
    let series: Vec<Vec<(usize, f64)>> = machines()
        .iter()
        .map(|m| data.series_vs_nodes(m.name(), OpClass::Barrier, 0))
        .collect();
    for (mach, pts) in machines().iter().zip(&series) {
        chart = chart.series(Series::new(
            mach.name(),
            symbol(mach.name()),
            pts.iter().map(|&(p, t)| (p as f64, t)).collect(),
        ));
    }
    for &p in &PAPER_NODE_COUNTS {
        let cell = |s: &Vec<(usize, f64)>| {
            s.iter()
                .find(|&&(sp, _)| sp == p)
                .map(|&(_, t)| format!("{t:.2}"))
                .unwrap_or_else(|| "-".into())
        };
        table.push_row([
            p.to_string(),
            cell(&series[0]),
            cell(&series[1]),
            cell(&series[2]),
        ]);
    }
    println!("\n{}", chart.render());
    print!("{}", table.render());
}
