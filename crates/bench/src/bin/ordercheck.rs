//! Order-analysis driver: certify which same-instant event reorderings
//! commute and name the ones that do not.
//!
//! ```text
//! cargo run --bin ordercheck -- --machine t3d --op alltoall -p 64 -m 4096
//! ```
//!
//! runs one point: baseline execution, static independence over
//! schedule-widened footprints, then bounded DPOR-style exploration —
//! each co-enabled same-instant pair re-executed with a targeted
//! `TieBreakPolicy::InvertPair` swap and judged by the canonical-order
//! oracle. Prints the commutability census and writes a
//! `*.ordercheck.json` document.
//!
//! `--suite [--threads N]` sweeps the fixed 21-point perfgate grid,
//! writing `ordercheck.json` plus an `ordercheck.prom` exposition file
//! (`ordercheck.sensitive_pairs`, `ordercheck.explored`, and per-point
//! series). Output is byte-identical for any `--threads N`. With
//! `--deny`, exits nonzero if any explored order-sensitive pair was
//! *not* predicted by the static relation (an unexplained pair) — the
//! CI gate guarding the elision/parallel-DES admission set.
//!
//! `--demo-broken` seeds the known failure mode instead (invert *all*
//! ties) and reports the minimal divergent pair with provenance
//! context, plus the canonical oracle's verdict on whether the reorder
//! changed the execution or only the bookkeeping.
//!
//! `--per-class N` / `--max-explore N` bound how many inversions are
//! re-executed per event-class pair and per point.

use bench::cli::{Accept, PointCli};
use ordercheck::{analyze_point, demo_broken, ExploreOptions, PointCensus, PointSpec, SuiteCensus};
use report::Table;

struct Args {
    cli: PointCli,
    deny: bool,
    demo: bool,
    opts: ExploreOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: ordercheck {} [--out DIR] [--per-class N] [--max-explore N] [--trace-cap N] [--demo-broken]\n       ordercheck --suite [--threads N] [--deny] [--out DIR] [--per-class N] [--max-explore N]",
        bench::cli::POINT_USAGE
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut cli = PointCli::default();
    let mut deny = false;
    let mut demo = false;
    let mut opts = ExploreOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match cli.accept(&a, || args.next()) {
            Accept::Consumed => continue,
            Accept::Invalid => usage(),
            Accept::Unknown => {}
        }
        let mut value = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--deny" => deny = true,
            "--demo-broken" => demo = true,
            "--per-class" => opts.per_class = value().parse().unwrap_or_else(|_| usage()),
            "--max-explore" => opts.max_explore = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
    }
    if !cli.selection_ok() {
        usage();
    }
    opts.trace_limit = cli.trace_cap;
    Args {
        cli,
        deny,
        demo,
        opts,
    }
}

fn census_table(points: &[PointCensus]) -> Table {
    let mut t = Table::new(
        [
            "machine",
            "op",
            "ties",
            "pruned",
            "cand",
            "indep",
            "explored",
            "commute",
            "sensitive",
            "unexplained",
            "missed",
        ]
        .into_iter()
        .map(str::to_string),
    );
    for c in points {
        t.push_row([
            c.machine.clone(),
            c.op.clone(),
            c.tie_pairs.to_string(),
            (c.pruned_causal + c.pruned_hb).to_string(),
            c.candidates.to_string(),
            c.independent.to_string(),
            c.explored.to_string(),
            c.commuting.to_string(),
            c.sensitive.to_string(),
            c.unexplained.to_string(),
            c.missed.to_string(),
        ]);
    }
    t
}

fn print_point(c: &PointCensus) {
    println!("{}", census_table(std::slice::from_ref(c)).render());
    for cl in &c.classes {
        println!(
            "  {}: explored {} commute {} sensitive {} (unexplained {}) missed {}",
            cl.classes, cl.explored, cl.commuting, cl.sensitive, cl.unexplained, cl.missed
        );
    }
    for ex in &c.sensitive_examples {
        println!("  sensitive {ex}");
    }
}

/// Stable per-point file stem, e.g. `ordercheck_cray_t3d_alltoall_p64_m4096`.
fn stem(c: &PointCensus) -> String {
    format!(
        "ordercheck_{}_{}_p{}_m{}",
        c.machine.to_ascii_lowercase().replace(' ', "_"),
        c.op,
        c.p,
        c.m
    )
}

fn run_suite(args: &Args) {
    let suite = bench::perfgate::default_suite();
    let points: Vec<PointSpec> = suite
        .iter()
        .map(|pt| PointSpec {
            machine: pt.machine.clone(),
            op: pt.op,
            p: pt.nodes,
            m: pt.bytes,
        })
        .collect();
    let (census, stats) = ordercheck::suite_census(&points, args.cli.threads, &args.opts);

    println!(
        "same-instant commutability census ({} points):",
        census.points.len()
    );
    println!("{}", census_table(&census.points).render());
    summary(&census);

    let out_dir = args.cli.out_dir();
    std::fs::create_dir_all(out_dir).expect("create output directory");
    let json_path = format!("{out_dir}/ordercheck.json");
    std::fs::write(&json_path, census.to_json_string()).expect("write census");
    let mut reg = obs::MetricsRegistry::new();
    census.export_metrics(&mut reg);
    let prom_path = format!("{out_dir}/ordercheck.prom");
    std::fs::write(&prom_path, obs::prom::text(&reg)).expect("write prom");
    println!(
        "wrote {json_path} and {prom_path} ({} workers, {:.0}% utilization)",
        stats.threads,
        100.0 * stats.utilization()
    );

    if args.deny && !census.clean() {
        for c in census.points.iter().filter(|c| !c.clean()) {
            eprintln!(
                "DENY: {} {} has {} unexplained order-sensitive pair(s):",
                c.machine, c.op, c.unexplained
            );
            for ex in &c.sensitive_examples {
                eprintln!("  {ex}");
            }
        }
        std::process::exit(1);
    }
}

fn summary(census: &SuiteCensus) {
    println!(
        "explored {} inversions: {} order-sensitive ({} unexplained) — \
         static independence {} the admission set",
        census.explored(),
        census.sensitive(),
        census.unexplained(),
        if census.clean() {
            "certifies"
        } else {
            "FAILS to certify"
        }
    );
}

fn main() {
    let args = parse_args();
    if args.cli.suite {
        run_suite(&args);
        return;
    }

    let machine = args.cli.machine.clone().expect("checked in parse_args");
    let op = args.cli.op.expect("checked in parse_args");
    let spec = PointSpec {
        machine,
        op,
        p: args.cli.p,
        m: args.cli.m,
    };

    if args.demo {
        let report = demo_broken(&spec, &args.opts);
        print!("{}", report.render());
        if !report.caught {
            std::process::exit(1);
        }
        return;
    }

    let census = analyze_point(&spec, &args.opts);
    print_point(&census);
    let suite = SuiteCensus {
        points: vec![census.clone()],
    };
    summary(&suite);

    let out_dir = args.cli.out_dir();
    std::fs::create_dir_all(out_dir).expect("create output directory");
    let path = format!("{out_dir}/{}.json", stem(&census));
    std::fs::write(&path, census.to_json().to_string_pretty()).expect("write census");
    println!("wrote {path}");
    if args.deny && !census.clean() {
        std::process::exit(1);
    }
}
