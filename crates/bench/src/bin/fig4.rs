//! Fig. 4 — breakdown of timing results into startup latency and
//! transmission delay for six MPI collective operations over p = 32
//! nodes with m = 1 KB per message.
//!
//! The startup portion comes from the fitted `T0(p)` surface (§3); the
//! white bar of the paper is `D = T - T0`.

use bench::{machines, timed, Cli, SIX_OPS};
use harness::SweepBuilder;
use perfmodel::breakdown;
use report::Table;

const P: usize = 32;
const M: u32 = 1_024;

fn main() {
    let cli = Cli::parse();
    // The breakdown needs the T0 fit, so sweep the m grid at several p.
    let data = timed("fig4 sweep", || {
        SweepBuilder::new()
            .machines(machines())
            .ops(SIX_OPS)
            .message_sizes([4, 64, 1_024, 16_384, 65_536])
            .node_counts([2, 4, 8, 16, 32, 64])
            .protocol(cli.protocol())
            .run()
            .expect("sweep")
    });
    cli.maybe_write_csv("fig4", &data);

    println!("\nFIGURE 4 — timing breakdown at p = {P}, m = {M} B");
    let mut table = Table::new([
        "Operation",
        "Machine",
        "T total (us)",
        "T0 startup (us)",
        "D transmission (us)",
        "startup %",
        "bar",
    ]);
    for op in SIX_OPS {
        for mach in machines() {
            let b = breakdown(&data, mach.name(), op, M, P).expect("breakdown");
            let frac = b.startup_fraction();
            // A 30-char bar: '#' startup, '.' transmission (log-free,
            // proportional within the row like the paper's stacked bars).
            let filled = (frac * 30.0).round() as usize;
            let bar: String = "#".repeat(filled) + &".".repeat(30 - filled);
            table.push_row([
                op.paper_name().to_string(),
                mach.name().to_string(),
                format!("{:.0}", b.total_us),
                format!("{:.0}", b.startup_us),
                format!("{:.0}", b.transmission_us),
                format!("{:.0}%", frac * 100.0),
                bar,
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\nPaper's observations to check: total exchange demands the longest time;\n\
         Paragon alltoall/gather startup is several times the SP2/T3D's."
    );
}
