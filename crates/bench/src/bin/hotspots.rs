//! Network hotspot analysis: where does each topology concentrate load,
//! and where does each rank's time go?
//!
//! Runs a 64-node total exchange on all three machines under full
//! instrumentation and reports (1) the link-load distribution — the
//! Paragon's mesh funnels bisection traffic through its center columns,
//! the T3D torus spreads it across wrap links, and the SP2's Omega
//! concentrates on shared interior wire columns — and (2) the per-phase
//! time split (software / copy / blocked) plus queueing delays, instead
//! of wall-clock-only numbers. Quantifies the "routing delays in the
//! 2-D mesh network" the paper blames for Paragon latency (§4).

use bench::Cli;
use desim::SimDuration;
use mpisim::comm::RunOptions;
use mpisim::{Machine, OpClass, Rank};
use report::Table;

const P: usize = 64;
const M: u32 = 4_096;

fn main() {
    let _cli = Cli::parse();
    println!("Link-load distribution: total exchange, {M} B x {P} nodes\n");
    let mut summary = Table::new([
        "Machine",
        "topology",
        "active links",
        "max busy",
        "mean busy",
        "imbalance",
    ]);
    let mut phases = Table::new([
        "Machine",
        "sw (max rank)",
        "blocked (max rank)",
        "blocked share",
        "link queue",
        "inject queue",
    ]);
    for machine in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
        let comm = machine.communicator(P).expect("size");
        let schedule = comm
            .schedule(OpClass::Alltoall, Rank(0), M)
            .expect("schedule");
        let (out, observed) = comm
            .run_observed(&[&schedule], RunOptions::default())
            .expect("run");
        let loads = &out.link_loads;
        let n = loads.len().max(1);
        let total: SimDuration = loads.iter().map(|&(_, b)| b).sum();
        let mean_us = total.as_micros_f64() / n as f64;
        let max_us = loads
            .first()
            .map(|&(_, b)| b.as_micros_f64())
            .unwrap_or(0.0);
        summary.push_row([
            machine.name().to_string(),
            machine.spec().topology.build(P).describe(),
            n.to_string(),
            format!("{max_us:.0} us"),
            format!("{mean_us:.0} us"),
            format!("{:.2}x", max_us / mean_us.max(1e-9)),
        ]);

        // Per-phase split of the slowest rank: how much of the critical
        // path is software overhead vs. waiting on the network.
        let slowest = (0..P)
            .max_by_key(|&r| out.rank_elapsed(r))
            .expect("non-empty");
        let ph = out.phases[slowest];
        let elapsed = out.rank_elapsed(slowest).as_micros_f64();
        phases.push_row([
            machine.name().to_string(),
            format!("{:.0} us", ph.sw.as_micros_f64()),
            format!("{:.0} us", ph.blocked.as_micros_f64()),
            format!(
                "{:.0}%",
                100.0 * ph.blocked.as_micros_f64() / elapsed.max(1e-9)
            ),
            format!("{:.0} us", observed.net.link_queue_ns as f64 / 1e3),
            format!("{:.0} us", observed.net.inject_queue_ns as f64 / 1e3),
        ]);

        println!("-- {} : ten hottest links --", machine.name());
        let mut t = Table::new(["link", "busy (us)", "share of total"]);
        for &(id, busy) in loads.iter().take(10) {
            t.push_row([
                format!("l{id}"),
                format!("{:.0}", busy.as_micros_f64()),
                format!(
                    "{:.1}%",
                    100.0 * busy.as_micros_f64() / total.as_micros_f64()
                ),
            ]);
        }
        println!("{}", t.render());
    }
    println!("== Summary ==");
    print!("{}", summary.render());
    println!("\n(imbalance = hottest link / mean active link; 1.0 = perfectly spread)\n");
    println!("== Critical-path phase split (slowest rank) ==");
    print!("{}", phases.render());
    println!("\n(queue columns: total time messages spent waiting for busy links / the injection engine)");
}
