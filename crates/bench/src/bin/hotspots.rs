//! Network hotspot analysis: where does each topology concentrate load?
//!
//! Runs a 64-node total exchange on all three machines with link-load
//! recording and reports the distribution — the Paragon's mesh funnels
//! bisection traffic through its center columns, the T3D torus spreads
//! it across wrap links, and the SP2's Omega concentrates on shared
//! interior wire columns. Quantifies the "routing delays in the 2-D
//! mesh network" the paper blames for Paragon latency (§4).

use bench::Cli;
use desim::SimDuration;
use mpisim::{Machine, OpClass, Rank};
use report::Table;

const P: usize = 64;
const M: u32 = 4_096;

fn main() {
    let _cli = Cli::parse();
    println!("Link-load distribution: total exchange, {M} B x {P} nodes\n");
    let mut summary = Table::new([
        "Machine",
        "topology",
        "active links",
        "max busy",
        "mean busy",
        "imbalance",
    ]);
    for machine in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
        let comm = machine.communicator(P).expect("size");
        let schedule = comm.schedule(OpClass::Alltoall, Rank(0), M).expect("schedule");
        let out = comm.run_diagnosed(&schedule).expect("run");
        let loads = &out.link_loads;
        let n = loads.len().max(1);
        let total: SimDuration = loads.iter().map(|&(_, b)| b).sum();
        let mean_us = total.as_micros_f64() / n as f64;
        let max_us = loads.first().map(|&(_, b)| b.as_micros_f64()).unwrap_or(0.0);
        summary.push_row([
            machine.name().to_string(),
            machine.spec().topology.build(P).describe(),
            n.to_string(),
            format!("{max_us:.0} us"),
            format!("{mean_us:.0} us"),
            format!("{:.2}x", max_us / mean_us.max(1e-9)),
        ]);
        println!("-- {} : ten hottest links --", machine.name());
        let mut t = Table::new(["link", "busy (us)", "share of total"]);
        for &(id, busy) in loads.iter().take(10) {
            t.push_row([
                format!("l{id}"),
                format!("{:.0}", busy.as_micros_f64()),
                format!(
                    "{:.1}%",
                    100.0 * busy.as_micros_f64() / total.as_micros_f64()
                ),
            ]);
        }
        println!("{}", t.render());
    }
    println!("== Summary ==");
    print!("{}", summary.render());
    println!("\n(imbalance = hottest link / mean active link; 1.0 = perfectly spread)");
}
