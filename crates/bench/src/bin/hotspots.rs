//! Network hotspot analysis: where does each topology concentrate load,
//! and where does each rank's time go?
//!
//! Runs a 64-node total exchange on all three machines under full
//! instrumentation and reports (1) the link-load distribution — the
//! Paragon's mesh funnels bisection traffic through its center columns,
//! the T3D torus spreads it across wrap links, and the SP2's Omega
//! concentrates on shared interior wire columns — and (2) the per-phase
//! time split (software / copy / blocked) plus queueing delays, instead
//! of wall-clock-only numbers. Quantifies the "routing delays in the
//! 2-D mesh network" the paper blames for Paragon latency (§4).
//!
//! `--json` emits the same data as one machine-readable JSON document
//! (for dashboards and the profiling notes in ROADMAP.md).

use bench::Cli;
use desim::SimDuration;
use mpisim::comm::RunOptions;
use mpisim::{Machine, OpClass, Rank};
use obs::Json;
use report::Table;

const P: usize = 64;
const M: u32 = 4_096;

struct LinkRow {
    id: usize,
    busy_us: f64,
    share: f64,
}

struct MachineHotspots {
    machine: String,
    topology: String,
    active_links: usize,
    max_busy_us: f64,
    mean_busy_us: f64,
    imbalance: f64,
    sw_us: f64,
    blocked_us: f64,
    blocked_share: f64,
    link_queue_us: f64,
    inject_queue_us: f64,
    top_links: Vec<LinkRow>,
}

fn analyze(machine: &Machine) -> MachineHotspots {
    let comm = machine.communicator(P).expect("size");
    let schedule = comm
        .schedule(OpClass::Alltoall, Rank(0), M)
        .expect("schedule");
    let (out, observed) = comm
        .run_observed(&[&schedule], RunOptions::default())
        .expect("run");
    let loads = &out.link_loads;
    let n = loads.len().max(1);
    let total: SimDuration = loads.iter().map(|&(_, b)| b).sum();
    let total_us = total.as_micros_f64();
    let mean_us = total_us / n as f64;
    let max_us = loads
        .first()
        .map(|&(_, b)| b.as_micros_f64())
        .unwrap_or(0.0);

    // Per-phase split of the slowest rank: how much of the critical
    // path is software overhead vs. waiting on the network.
    let slowest = (0..P)
        .max_by_key(|&r| out.rank_elapsed(r))
        .expect("non-empty");
    let ph = out.phases[slowest];
    let elapsed = out.rank_elapsed(slowest).as_micros_f64();

    MachineHotspots {
        machine: machine.name().to_string(),
        topology: machine.spec().topology.build(P).describe(),
        active_links: n,
        max_busy_us: max_us,
        mean_busy_us: mean_us,
        imbalance: max_us / mean_us.max(1e-9),
        sw_us: ph.sw.as_micros_f64(),
        blocked_us: ph.blocked.as_micros_f64(),
        blocked_share: ph.blocked.as_micros_f64() / elapsed.max(1e-9),
        link_queue_us: observed.net.link_queue_ns as f64 / 1e3,
        inject_queue_us: observed.net.inject_queue_ns as f64 / 1e3,
        top_links: loads
            .iter()
            .take(10)
            .map(|&(id, busy)| LinkRow {
                id,
                busy_us: busy.as_micros_f64(),
                share: busy.as_micros_f64() / total_us.max(1e-9),
            })
            .collect(),
    }
}

fn to_json(all: &[MachineHotspots]) -> Json {
    Json::object([
        ("workload", Json::str("alltoall")),
        ("bytes", Json::UInt(M as u64)),
        ("nodes", Json::UInt(P as u64)),
        (
            "machines",
            Json::Array(
                all.iter()
                    .map(|h| {
                        Json::object([
                            ("machine", Json::str(&h.machine)),
                            ("topology", Json::str(&h.topology)),
                            ("active_links", Json::UInt(h.active_links as u64)),
                            ("max_busy_us", Json::Float(h.max_busy_us)),
                            ("mean_busy_us", Json::Float(h.mean_busy_us)),
                            ("imbalance", Json::Float(h.imbalance)),
                            ("critical_sw_us", Json::Float(h.sw_us)),
                            ("critical_blocked_us", Json::Float(h.blocked_us)),
                            ("critical_blocked_share", Json::Float(h.blocked_share)),
                            ("link_queue_us", Json::Float(h.link_queue_us)),
                            ("inject_queue_us", Json::Float(h.inject_queue_us)),
                            (
                                "top_links",
                                Json::Array(
                                    h.top_links
                                        .iter()
                                        .map(|l| {
                                            Json::object([
                                                ("link", Json::UInt(l.id as u64)),
                                                ("busy_us", Json::Float(l.busy_us)),
                                                ("share", Json::Float(l.share)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let cli = Cli::parse();
    let machines = [Machine::sp2(), Machine::paragon(), Machine::t3d()];
    let (all, _stats) = harness::map_indexed(
        machines.len(),
        cli.threads,
        |i| analyze(&machines[i]),
        &|_, _| {},
    );

    if cli.json {
        println!("{}", to_json(&all).to_string_pretty());
        return;
    }

    println!("Link-load distribution: total exchange, {M} B x {P} nodes\n");
    let mut summary = Table::new([
        "Machine",
        "topology",
        "active links",
        "max busy",
        "mean busy",
        "imbalance",
    ]);
    let mut phases = Table::new([
        "Machine",
        "sw (max rank)",
        "blocked (max rank)",
        "blocked share",
        "link queue",
        "inject queue",
    ]);
    for h in &all {
        summary.push_row([
            h.machine.clone(),
            h.topology.clone(),
            h.active_links.to_string(),
            format!("{:.0} us", h.max_busy_us),
            format!("{:.0} us", h.mean_busy_us),
            format!("{:.2}x", h.imbalance),
        ]);
        phases.push_row([
            h.machine.clone(),
            format!("{:.0} us", h.sw_us),
            format!("{:.0} us", h.blocked_us),
            format!("{:.0}%", 100.0 * h.blocked_share),
            format!("{:.0} us", h.link_queue_us),
            format!("{:.0} us", h.inject_queue_us),
        ]);

        println!("-- {} : ten hottest links --", h.machine);
        let mut t = Table::new(["link", "busy (us)", "share of total"]);
        for l in &h.top_links {
            t.push_row([
                format!("l{}", l.id),
                format!("{:.0}", l.busy_us),
                format!("{:.1}%", 100.0 * l.share),
            ]);
        }
        println!("{}", t.render());
    }
    println!("== Summary ==");
    print!("{}", summary.render());
    println!("\n(imbalance = hottest link / mean active link; 1.0 = perfectly spread)\n");
    println!("== Critical-path phase split (slowest rank) ==");
    print!("{}", phases.render());
    println!("\n(queue columns: total time messages spent waiting for busy links / the injection engine)");
}
