//! Full STAP workload report: per-stage breakdowns for every machine
//! across partition sizes and cube scales — the application-level view
//! of the paper's collective measurements (its §9 promises the full STAP
//! results "in a separate paper"; this binary is our stand-in).

use bench::Cli;
use mpisim::Machine;
use report::Table;
use stap::{DataCube, StapRun, StapStage};

fn main() {
    let _cli = Cli::parse();
    for (label, cube) in [("small", DataCube::small()), ("medium", DataCube::medium())] {
        println!(
            "\n================ {label} cube: {} MB ================",
            cube.bytes() >> 20
        );
        for machine in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
            let mut t = Table::new([
                "p",
                "Doppler",
                "corner turn",
                "weights+bcast",
                "beamform",
                "CFAR",
                "reduce",
                "total (ms)",
                "comm %",
            ]);
            for p in [4usize, 8, 16, 32, 64] {
                if p > machine.spec().max_nodes {
                    continue;
                }
                let run = StapRun::execute(&machine, cube, p).expect("run");
                let us = |stage: StapStage| {
                    run.stages
                        .iter()
                        .find(|s| s.stage == stage)
                        .map(|s| s.total_us())
                        .unwrap_or(0.0)
                };
                t.push_row([
                    p.to_string(),
                    format!("{:.1}", us(StapStage::DopplerFilter) / 1000.0),
                    format!("{:.1}", us(StapStage::CornerTurn) / 1000.0),
                    format!(
                        "{:.1}",
                        (us(StapStage::WeightCompute) + us(StapStage::WeightBroadcast)) / 1000.0
                    ),
                    format!("{:.1}", us(StapStage::Beamform) / 1000.0),
                    format!("{:.1}", us(StapStage::CfarDetect) / 1000.0),
                    format!("{:.1}", us(StapStage::ReportReduce) / 1000.0),
                    format!("{:.1}", run.total_us() / 1000.0),
                    format!("{:.0}%", 100.0 * run.comm_fraction()),
                ]);
            }
            println!("\n-- {} (stage times in ms) --", machine.name());
            print!("{}", t.render());
        }
    }
}
