//! Host-side self-profiling: named wall-clock timers with streaming
//! quantile summaries, behind a zero-cost-when-off switch.
//!
//! PR 1 made the *simulated* machines observable; this module watches
//! the simulator itself. A [`Profiler`] owns a set of named timers
//! (`"collective.bcast"`, `"sweep.point"`, ...), each accumulating call
//! count, total wall-clock nanoseconds, and a [`QuantileSketch`] of
//! per-call latencies. A disabled profiler never reads the OS clock —
//! [`Profiler::time`] degenerates to a direct call of the closure and
//! [`Profiler::record_ns`] to a single branch — so instrumented code
//! paths cost nothing in production measurement loops.
//!
//! # Examples
//!
//! ```
//! use obs::{MetricsRegistry, Profiler};
//!
//! let mut prof = Profiler::enabled();
//! let out = prof.time("phase.fit", || 2 + 2);
//! assert_eq!(out, 4);
//! let mut reg = MetricsRegistry::new();
//! prof.export_metrics(&mut reg);
//! assert_eq!(reg.get("prof.phase.fit.calls").unwrap().as_f64(), Some(1.0));
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use crate::quantile::QuantileSketch;
use crate::registry::MetricsRegistry;

/// Per-timer accumulator.
#[derive(Debug, Clone, Default)]
struct TimerStats {
    calls: u64,
    total_ns: u64,
    sketch: QuantileSketch,
}

/// A named wall-clock timer registry with an on/off master switch.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    timers: BTreeMap<String, TimerStats>,
}

impl Profiler {
    /// A profiler that records.
    pub fn enabled() -> Self {
        Profiler {
            enabled: true,
            timers: BTreeMap::new(),
        }
    }

    /// A profiler that ignores everything (the zero-cost default).
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// Whether this profiler records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Runs `f`, attributing its wall-clock time to `name`. When the
    /// profiler is disabled this is exactly `f()` — no clock reads.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.record_ns(name, ns);
        out
    }

    /// Records an externally measured duration against `name`. A no-op
    /// when disabled.
    pub fn record_ns(&mut self, name: &str, ns: u64) {
        if !self.enabled {
            return;
        }
        let stats = self.timers.entry(name.to_string()).or_default();
        stats.calls += 1;
        stats.total_ns = stats.total_ns.saturating_add(ns);
        stats.sketch.record(ns as f64);
    }

    /// Number of distinct timers recorded so far.
    pub fn len(&self) -> usize {
        self.timers.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty()
    }

    /// Call count of timer `name` (0 if never recorded).
    pub fn calls(&self, name: &str) -> u64 {
        self.timers.get(name).map_or(0, |t| t.calls)
    }

    /// Total nanoseconds attributed to `name`.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.timers.get(name).map_or(0, |t| t.total_ns)
    }

    /// The latency sketch of timer `name`, when it has recorded.
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.timers.get(name).map(|t| &t.sketch)
    }

    /// Merges another profiler's timers into this one (timer-wise sketch
    /// merge; counts and totals add). Enabled-ness is unchanged.
    pub fn absorb(&mut self, other: &Profiler) {
        for (name, stats) in &other.timers {
            let mine = self.timers.entry(name.clone()).or_default();
            mine.calls += stats.calls;
            mine.total_ns = mine.total_ns.saturating_add(stats.total_ns);
            mine.sketch.merge(&stats.sketch);
        }
    }

    /// Exports every timer into `reg` under `prof.<name>.*`:
    /// `calls` / `total_ns` counters plus `mean_ns`, `p50_ns`, `p90_ns`,
    /// `p99_ns`, `max_ns` gauges from the quantile sketch.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        for (name, stats) in &self.timers {
            reg.counter(format!("prof.{name}.calls"), stats.calls);
            reg.counter(format!("prof.{name}.total_ns"), stats.total_ns);
            reg.gauge(format!("prof.{name}.mean_ns"), stats.sketch.mean());
            for (q, label) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
                if let Some(v) = stats.sketch.quantile(q) {
                    reg.gauge(format!("prof.{name}.{label}_ns"), v);
                }
            }
            if let Some(v) = stats.sketch.max() {
                reg.gauge(format!("prof.{name}.max_ns"), v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        assert!(!p.is_enabled());
        let out = p.time("x", || 42);
        assert_eq!(out, 42);
        p.record_ns("x", 1000);
        assert!(p.is_empty());
        assert_eq!(p.calls("x"), 0);
    }

    #[test]
    fn enabled_profiler_accumulates() {
        let mut p = Profiler::enabled();
        p.record_ns("op.bcast", 100);
        p.record_ns("op.bcast", 300);
        p.record_ns("op.reduce", 50);
        assert_eq!(p.len(), 2);
        assert_eq!(p.calls("op.bcast"), 2);
        assert_eq!(p.total_ns("op.bcast"), 400);
        assert_eq!(p.sketch("op.bcast").unwrap().mean(), 200.0);
    }

    #[test]
    fn time_measures_wall_clock() {
        let mut p = Profiler::enabled();
        p.time("sleep", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert_eq!(p.calls("sleep"), 1);
        assert!(p.total_ns("sleep") >= 2_000_000, "{}", p.total_ns("sleep"));
    }

    #[test]
    fn absorb_merges_timerwise() {
        let mut a = Profiler::enabled();
        let mut b = Profiler::enabled();
        a.record_ns("x", 10);
        b.record_ns("x", 30);
        b.record_ns("y", 5);
        a.absorb(&b);
        assert_eq!(a.calls("x"), 2);
        assert_eq!(a.total_ns("x"), 40);
        assert_eq!(a.calls("y"), 1);
    }

    #[test]
    fn export_produces_prof_namespace() {
        let mut p = Profiler::enabled();
        for ns in [100u64, 200, 300, 400, 500] {
            p.record_ns("phase.measure", ns);
        }
        let mut reg = MetricsRegistry::new();
        p.export_metrics(&mut reg);
        assert_eq!(
            reg.get("prof.phase.measure.calls").unwrap().as_f64(),
            Some(5.0)
        );
        assert_eq!(
            reg.get("prof.phase.measure.total_ns").unwrap().as_f64(),
            Some(1500.0)
        );
        assert_eq!(
            reg.get("prof.phase.measure.p50_ns").unwrap().as_f64(),
            Some(300.0)
        );
        assert_eq!(
            reg.get("prof.phase.measure.max_ns").unwrap().as_f64(),
            Some(500.0)
        );
    }
}
