//! Prometheus exposition-format text export of a [`MetricsRegistry`].
//!
//! `BENCH_*.json` is for machines and the metrics table is for eyes;
//! this renderer is for scrapers. It emits the [text-based exposition
//! format]: a `# HELP` + `# TYPE` pair per metric (the HELP text carries
//! the original dotted path, since the sample name is sanitized),
//! counters suffixed `_total`, power-of-two histograms as cumulative
//! `_bucket{le="..."}` series with `_sum` and `_count`. Metric names are
//! sanitized to the Prometheus charset (`[a-zA-Z0-9_:]`), so
//! `engine.events_fired` becomes `engine_events_fired_total`; label
//! values and HELP text are escaped per the format's rules
//! (`promtool check metrics` clean).
//!
//! [text-based exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use crate::registry::{Metric, MetricsRegistry};

/// Sanitizes a dotted metric path into a Prometheus metric name.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and line feed.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes `# HELP` text: backslash and line feed (quotes are legal
/// there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a float sample value the way Prometheus expects special
/// values spelled (`NaN`, `+Inf`, `-Inf`).
fn prom_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        v.to_string()
    }
}

/// Renders the registry in the Prometheus text exposition format.
///
/// # Examples
///
/// ```
/// use obs::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// reg.counter("engine.events_fired", 7);
/// let text = obs::prom::text(&reg);
/// assert!(text.contains("# HELP engine_events_fired_total simulator metric engine.events_fired"));
/// assert!(text.contains("# TYPE engine_events_fired_total counter"));
/// assert!(text.contains("engine_events_fired_total 7"));
/// ```
pub fn text(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, metric) in reg.iter() {
        let base = prom_name(name);
        let help = escape_help(name);
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# HELP {base}_total simulator metric {help}");
                let _ = writeln!(out, "# TYPE {base}_total counter");
                let _ = writeln!(out, "{base}_total {c}");
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# HELP {base} simulator metric {help}");
                let _ = writeln!(out, "# TYPE {base} gauge");
                let _ = writeln!(out, "{base} {}", prom_float(*g));
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# HELP {base} simulator metric {help}");
                let _ = writeln!(out, "# TYPE {base} histogram");
                let mut cumulative = 0u64;
                for (floor, count) in h.nonzero_buckets() {
                    cumulative += count;
                    // Bucket 0 holds [0, 2); bucket i >= 1 holds
                    // [2^i, 2^(i+1)), so the upper edge doubles the floor.
                    let le =
                        escape_label_value(&(if floor == 0 { 2 } else { floor * 2 }).to_string());
                    let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{base}_sum {}", h.sum());
                let _ = writeln!(out, "{base}_count {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(prom_name("net.link.0.bytes"), "net_link_0_bytes");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a:b_c"), "a:b_c");
    }

    #[test]
    fn renders_all_metric_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter("engine.events", 42);
        reg.gauge("net.util", 0.5);
        reg.observe("lat.ns", 3);
        reg.observe("lat.ns", 100);
        let text = text(&reg);
        assert!(
            text.contains("# TYPE engine_events_total counter"),
            "{text}"
        );
        assert!(text.contains("engine_events_total 42"), "{text}");
        assert!(text.contains("# TYPE net_util gauge"), "{text}");
        assert!(text.contains("net_util 0.5"), "{text}");
        assert!(text.contains("# TYPE lat_ns histogram"), "{text}");
        // 3 lands in [2,4) -> le=4; 100 in [64,128) -> le=128; cumulative.
        assert!(text.contains("lat_ns_bucket{le=\"4\"} 1"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"128\"} 2"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_ns_sum 103"), "{text}");
        assert!(text.contains("lat_ns_count 2"), "{text}");
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(text(&MetricsRegistry::new()), "");
    }

    #[test]
    fn every_metric_gets_help_before_type() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a.count", 1);
        reg.gauge("b.level", 2.0);
        reg.observe("c.dist", 3);
        let text = text(&reg);
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap();
                assert_eq!(
                    lines[i - 1]
                        .strip_prefix("# HELP ")
                        .and_then(|h| h.split(' ').next()),
                    Some(name),
                    "HELP must immediately precede TYPE for {name}"
                );
            }
        }
        assert_eq!(
            lines.iter().filter(|l| l.starts_with("# HELP")).count(),
            3,
            "one HELP per metric"
        );
    }

    #[test]
    fn label_values_and_help_escape() {
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn nonfinite_gauges_use_prometheus_spelling() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("g.nan", f64::NAN);
        reg.gauge("g.pos", f64::INFINITY);
        reg.gauge("g.neg", f64::NEG_INFINITY);
        let text = text(&reg);
        assert!(text.contains("g_nan NaN"), "{text}");
        assert!(text.contains("g_pos +Inf"), "{text}");
        assert!(text.contains("g_neg -Inf"), "{text}");
    }
}
