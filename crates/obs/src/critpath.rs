//! Causal critical-path reconstruction with latency blame decomposition.
//!
//! The input is a plain-data description of one run: per-track
//! (per-rank) activity [`Span`]s, each labelled with a [`Blame`]
//! category and a [`Cause`] edge saying *whose* action ended it, plus
//! one [`Transfer`] record per network message carrying its measured
//! FIFO-occupancy and link-contention waits. [`walk`] then traces
//! backward from the final completion instant, hopping tracks along the
//! causal edges, and tiles the whole elapsed interval
//! `[start_ns, end_ns]` with contiguous [`PathSegment`]s — so the
//! per-category totals sum *exactly* to end-to-end elapsed time (the
//! conservation invariant the property suite checks).
//!
//! Like the rest of this crate, the module is dependency-free plain
//! data: times are integer nanoseconds, tracks are small integers. The
//! semantic construction of spans and causes from a simulation lives
//! upstream (in `mpisim::critpath`), keeping this walker reusable and
//! unit-testable on hand-built graphs.

use crate::registry::MetricsRegistry;

/// Where one stretch of the critical path's time is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Blame {
    /// Collective-entry software overhead.
    Entry,
    /// Send-side software overhead (`o_send`).
    SendSw,
    /// Payload copy / send-engine setup holding the CPU.
    Copy,
    /// Receive-side software overhead plus receive copy (`o_recv`).
    RecvSw,
    /// Reduction arithmetic.
    Compute,
    /// Payload in flight on idle wire: hop latency + serialization.
    Wire,
    /// Queued behind the sending node's injection engine (FIFO
    /// occupancy).
    FifoWait,
    /// Queued behind busy links (contention).
    LinkWait,
    /// Hardware/logical barrier synchronization latency.
    BarrierSync,
    /// Time the walker could not attribute (gaps before a track's first
    /// span, truncated traces). Nonzero idle means lost observability,
    /// not lost time — it still counts toward conservation.
    Idle,
}

impl Blame {
    /// Every category, in display order.
    pub const ALL: [Blame; 10] = [
        Blame::Entry,
        Blame::SendSw,
        Blame::Copy,
        Blame::RecvSw,
        Blame::Compute,
        Blame::Wire,
        Blame::FifoWait,
        Blame::LinkWait,
        Blame::BarrierSync,
        Blame::Idle,
    ];

    /// Number of categories (the length of a totals array).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable metric-key fragment: `critpath.<key>.ns`.
    pub fn key(self) -> &'static str {
        match self {
            Blame::Entry => "entry",
            Blame::SendSw => "send_sw",
            Blame::Copy => "copy",
            Blame::RecvSw => "recv_sw",
            Blame::Compute => "compute",
            Blame::Wire => "wire",
            Blame::FifoWait => "fifo_wait",
            Blame::LinkWait => "link_wait",
            Blame::BarrierSync => "barrier_sync",
            Blame::Idle => "idle",
        }
    }

    /// Index into a `[u64; Blame::COUNT]` totals array.
    pub fn index(self) -> usize {
        match self {
            Blame::Entry => 0,
            Blame::SendSw => 1,
            Blame::Copy => 2,
            Blame::RecvSw => 3,
            Blame::Compute => 4,
            Blame::Wire => 5,
            Blame::FifoWait => 6,
            Blame::LinkWait => 7,
            Blame::BarrierSync => 8,
            Blame::Idle => 9,
        }
    }
}

/// The causal edge out of a span's *end*: what the walker does after
/// charging the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// The track's own earlier activity: keep walking this track.
    Local,
    /// The span ended because message `transfers[msg]` arrived: tile the
    /// wire journey, then continue on the sender's track at the instant
    /// the message entered the wire.
    Message {
        /// Index into the `transfers` slice passed to [`walk`].
        msg: u32,
    },
    /// The span ended because a barrier released: continue on the
    /// triggering (last-arriving) track. The trigger's own wait span is
    /// charged as [`Blame::BarrierSync`].
    Barrier {
        /// The triggering track.
        track: u32,
    },
}

/// One attributed stretch of one track's timeline. Spans on a track must
/// be non-overlapping with `end_ns > start_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which timeline (rank) this span belongs to.
    pub track: u32,
    /// Where its time is charged if it lands on the critical path.
    pub blame: Blame,
    /// Start instant, nanoseconds.
    pub start_ns: u64,
    /// End instant, nanoseconds (strictly after `start_ns`).
    pub end_ns: u64,
    /// The causal edge the walker follows out of this span's end.
    pub cause: Cause,
}

/// One network message's wire journey, with its measured waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// The sending track.
    pub src_track: u32,
    /// When the payload entered the network (sender CPU released).
    pub wire_start_ns: u64,
    /// When the payload fully arrived at the destination.
    pub delivered_ns: u64,
    /// Time queued behind the injection engine.
    pub fifo_wait_ns: u64,
    /// Time queued behind busy links.
    pub link_wait_ns: u64,
}

impl Transfer {
    /// True when the message never queued: provably contention-free.
    pub fn uncontended(&self) -> bool {
        self.fifo_wait_ns == 0 && self.link_wait_ns == 0
    }
}

/// One tile of the reconstructed critical path. Segments are emitted in
/// walk order — newest first — and tile `[start_ns, end_ns]` exactly:
/// each segment's start is the next (older) segment's end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// The track the path ran on during this tile.
    pub track: u32,
    /// The charged category.
    pub blame: Blame,
    /// Tile start, nanoseconds.
    pub start_ns: u64,
    /// Tile end, nanoseconds.
    pub end_ns: u64,
}

/// The critical path's blame decomposition: per-category totals that sum
/// exactly to `end_ns - start_ns`, plus the path tiles themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Interval start (the earliest rank start).
    pub start_ns: u64,
    /// Interval end (the completion instant walked back from).
    pub end_ns: u64,
    /// Nanoseconds charged to each category, indexed by
    /// [`Blame::index`].
    pub totals: [u64; Blame::COUNT],
    /// The path tiles, newest first.
    pub segments: Vec<PathSegment>,
}

impl Decomposition {
    /// Nanoseconds charged to `blame`.
    pub fn get(&self, blame: Blame) -> u64 {
        self.totals[blame.index()]
    }

    /// Sum of all category totals; equals [`Decomposition::elapsed_ns`]
    /// by construction.
    pub fn total_ns(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// The decomposed interval's length.
    pub fn elapsed_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Fraction of the elapsed interval charged to `blame` (0 when the
    /// interval is empty).
    pub fn fraction(&self, blame: Blame) -> f64 {
        if self.elapsed_ns() == 0 {
            0.0
        } else {
            self.get(blame) as f64 / self.elapsed_ns() as f64
        }
    }

    /// Exports `critpath.<category>.ns` counters, `.frac` gauges, and
    /// the `critpath.total_ns` counter into `reg`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("critpath.total_ns", self.total_ns());
        for blame in Blame::ALL {
            let ns = self.get(blame);
            if ns > 0 {
                reg.counter(format!("critpath.{}.ns", blame.key()), ns);
                reg.gauge(
                    format!("critpath.{}.frac", blame.key()),
                    self.fraction(blame),
                );
            }
        }
    }
}

/// The contention census over a run's transfers: how many never queued —
/// the admission set for an event-elision fast path that would predict
/// delivery times without simulating link occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Census {
    /// Remote transfers examined.
    pub transfers: u64,
    /// Transfers whose links and injection engine were provably idle for
    /// their whole duration.
    pub uncontended: u64,
}

impl Census {
    /// Tallies every remote transfer in `transfers`.
    pub fn of(transfers: &[Transfer]) -> Census {
        Census {
            transfers: transfers.len() as u64,
            uncontended: transfers.iter().filter(|t| t.uncontended()).count() as u64,
        }
    }

    /// Fraction of transfers that were uncontended (0 when none ran).
    pub fn fraction(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.uncontended as f64 / self.transfers as f64
        }
    }

    /// Exports `critpath.census.*` counters and the fraction gauge.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("critpath.census.transfers", self.transfers);
        reg.counter("critpath.census.uncontended", self.uncontended);
        reg.gauge("critpath.census.frac", self.fraction());
    }
}

/// Per-track span index: indices into the span slice, sorted by
/// `(end_ns, start_ns)` so the walker can binary-search for "the span
/// ending at or latest before `t`".
fn index_tracks(spans: &[Span]) -> Vec<Vec<usize>> {
    let tracks = spans
        .iter()
        .map(|s| s.track as usize + 1)
        .max()
        .unwrap_or(0);
    let mut by_track: Vec<Vec<usize>> = vec![Vec::new(); tracks];
    for (i, s) in spans.iter().enumerate() {
        debug_assert!(s.end_ns > s.start_ns, "zero-length span {i}");
        by_track[s.track as usize].push(i);
    }
    for list in &mut by_track {
        list.sort_by_key(|&i| (spans[i].end_ns, spans[i].start_ns));
    }
    by_track
}

/// The rightmost span on `track` with `end_ns <= t`, or `None`.
fn latest_ending_at_or_before(
    spans: &[Span],
    by_track: &[Vec<usize>],
    track: u32,
    t: u64,
) -> Option<usize> {
    let list = by_track.get(track as usize)?;
    let pos = list.partition_point(|&i| spans[i].end_ns <= t);
    pos.checked_sub(1).map(|p| list[p])
}

/// Walks backward from `(end_track, end_ns)` and tiles `[start_ns,
/// end_ns]` with blame-charged path segments. `end_ns >= start_ns` is
/// required; transfers referenced by [`Cause::Message`] edges must be in
/// range.
///
/// The walker is total: unattributable stretches (before a track's first
/// span, or if the causal graph is malformed) become [`Blame::Idle`]
/// tiles rather than holes, so conservation holds unconditionally.
///
/// # Panics
///
/// Panics if `end_ns < start_ns` or a [`Cause::Message`] index is out of
/// range of `transfers`.
pub fn walk(
    spans: &[Span],
    transfers: &[Transfer],
    end_track: u32,
    start_ns: u64,
    end_ns: u64,
) -> Decomposition {
    assert!(end_ns >= start_ns, "interval runs backward");
    let by_track = index_tracks(spans);
    let mut out = Decomposition {
        start_ns,
        end_ns,
        totals: [0; Blame::COUNT],
        segments: Vec::new(),
    };
    let charge = |out: &mut Decomposition, track: u32, blame: Blame, s: u64, e: u64| {
        if e > s {
            out.totals[blame.index()] += e - s;
            out.segments.push(PathSegment {
                track,
                blame,
                start_ns: s,
                end_ns: e,
            });
        }
    };

    let mut track = end_track;
    let mut t = end_ns;
    // Backstop: each iteration either consumes a span, a transfer edge,
    // or a one-time track switch, so a well-formed graph terminates well
    // inside this budget. A malformed one degrades to Idle, not a hang.
    let mut fuel = spans.len() + 2 * transfers.len() + by_track.len() + 16;
    while t > start_ns {
        if fuel == 0 {
            charge(&mut out, track, Blame::Idle, start_ns, t);
            break;
        }
        fuel -= 1;
        let Some(si) = latest_ending_at_or_before(spans, &by_track, track, t) else {
            // Nothing recorded on this track before t: the stretch back
            // to the interval start is unattributed.
            charge(&mut out, track, Blame::Idle, start_ns, t);
            t = start_ns;
            continue;
        };
        let span = spans[si];
        if span.end_ns < t {
            // Gap between this track's latest activity and the frontier.
            let gap_start = span.end_ns.max(start_ns);
            charge(&mut out, track, Blame::Idle, gap_start, t);
            t = gap_start;
            continue;
        }
        // span.end_ns == t: charge it and follow its causal edge.
        match span.cause {
            Cause::Local => {
                let s = span.start_ns.max(start_ns);
                charge(&mut out, track, span.blame, s, t);
                t = s;
            }
            Cause::Message { msg } => {
                let tr = transfers[msg as usize];
                // Tile the wire journey [wire_start, t] in forward order
                // fifo -> link -> wire, clamping each component to the
                // interval (the components are aggregates over the
                // message's segments, so clamped ordered tiling keeps
                // the tiles exact while preserving the totals whenever
                // they fit — they always do for whole-message sends).
                let w0 = tr.wire_start_ns.min(t).max(start_ns);
                let len = t - w0;
                let fifo = tr.fifo_wait_ns.min(len);
                let link = tr.link_wait_ns.min(len - fifo);
                charge(&mut out, track, Blame::Wire, w0 + fifo + link, t);
                charge(
                    &mut out,
                    track,
                    Blame::LinkWait,
                    w0 + fifo,
                    w0 + fifo + link,
                );
                charge(&mut out, track, Blame::FifoWait, w0, w0 + fifo);
                track = tr.src_track;
                t = w0;
            }
            Cause::Barrier { track: trigger } => {
                if trigger == track {
                    // The trigger's own wait is the synchronization
                    // latency itself.
                    let s = span.start_ns.max(start_ns);
                    charge(&mut out, track, Blame::BarrierSync, s, t);
                    t = s;
                } else {
                    // Hop to the last-arriving track at the same
                    // instant; its own spans explain the release time.
                    track = trigger;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: u32, blame: Blame, start_ns: u64, end_ns: u64, cause: Cause) -> Span {
        Span {
            track,
            blame,
            start_ns,
            end_ns,
            cause,
        }
    }

    #[test]
    fn single_track_local_chain() {
        let spans = [
            span(0, Blame::Entry, 0, 10, Cause::Local),
            span(0, Blame::Compute, 10, 30, Cause::Local),
            span(0, Blame::RecvSw, 30, 45, Cause::Local),
        ];
        let d = walk(&spans, &[], 0, 0, 45);
        assert_eq!(d.total_ns(), 45);
        assert_eq!(d.get(Blame::Entry), 10);
        assert_eq!(d.get(Blame::Compute), 20);
        assert_eq!(d.get(Blame::RecvSw), 15);
        assert_eq!(d.get(Blame::Idle), 0);
        assert_eq!(d.segments.len(), 3);
        // Newest-first contiguous tiling.
        assert_eq!(d.segments[0].end_ns, 45);
        assert_eq!(d.segments[2].start_ns, 0);
        for w in d.segments.windows(2) {
            assert_eq!(w[0].start_ns, w[1].end_ns);
        }
    }

    #[test]
    fn message_jump_tiles_wire_and_switches_track() {
        // Track 1 waits for a message from track 0: copy ends at 20
        // (wire start), delivery at 100, with 15ns fifo + 25ns link wait.
        let spans = [
            span(0, Blame::SendSw, 0, 10, Cause::Local),
            span(0, Blame::Copy, 10, 20, Cause::Local),
            span(1, Blame::Idle, 0, 5, Cause::Local),
            span(1, Blame::Idle, 5, 100, Cause::Message { msg: 0 }),
            span(1, Blame::RecvSw, 100, 120, Cause::Local),
        ];
        let transfers = [Transfer {
            src_track: 0,
            wire_start_ns: 20,
            delivered_ns: 100,
            fifo_wait_ns: 15,
            link_wait_ns: 25,
        }];
        let d = walk(&spans, &transfers, 1, 0, 120);
        assert_eq!(d.total_ns(), 120, "conservation");
        assert_eq!(d.get(Blame::RecvSw), 20);
        assert_eq!(d.get(Blame::FifoWait), 15);
        assert_eq!(d.get(Blame::LinkWait), 25);
        assert_eq!(d.get(Blame::Wire), 80 - 15 - 25);
        // Continues on the sender before the wire: send + copy.
        assert_eq!(d.get(Blame::SendSw), 10);
        assert_eq!(d.get(Blame::Copy), 10);
        assert_eq!(d.get(Blame::Idle), 0);
    }

    #[test]
    fn barrier_jump_follows_trigger() {
        // Tracks 0,1 wait; track 2 arrives last at t=50 and the barrier
        // releases at t=60 (10ns hardware latency).
        let spans = [
            span(0, Blame::Compute, 0, 5, Cause::Local),
            span(0, Blame::Idle, 5, 60, Cause::Barrier { track: 2 }),
            span(1, Blame::Compute, 0, 8, Cause::Local),
            span(1, Blame::Idle, 8, 60, Cause::Barrier { track: 2 }),
            span(2, Blame::Compute, 0, 50, Cause::Local),
            span(2, Blame::Idle, 50, 60, Cause::Barrier { track: 2 }),
            span(0, Blame::RecvSw, 60, 70, Cause::Local),
        ];
        let d = walk(&spans, &[], 0, 0, 70);
        assert_eq!(d.total_ns(), 70);
        assert_eq!(d.get(Blame::RecvSw), 10);
        assert_eq!(d.get(Blame::BarrierSync), 10, "trigger's own wait");
        assert_eq!(d.get(Blame::Compute), 50, "trigger's pre-barrier work");
        assert_eq!(d.get(Blame::Idle), 0);
    }

    #[test]
    fn zero_latency_barrier_switches_without_advancing() {
        // The trigger arrives at t=50 and the release is the same
        // instant; the trigger has no wait span at all (zero-length
        // spans are never recorded).
        let spans = [
            span(0, Blame::Idle, 0, 50, Cause::Barrier { track: 1 }),
            span(1, Blame::Compute, 0, 50, Cause::Local),
            span(0, Blame::RecvSw, 50, 55, Cause::Local),
        ];
        let d = walk(&spans, &[], 0, 0, 55);
        assert_eq!(d.total_ns(), 55);
        assert_eq!(d.get(Blame::Compute), 50);
        assert_eq!(d.get(Blame::RecvSw), 5);
    }

    #[test]
    fn gaps_and_missing_history_become_idle() {
        // Track 0's record starts at 30 and has a 10ns hole at [40, 50].
        let spans = [
            span(0, Blame::Compute, 30, 40, Cause::Local),
            span(0, Blame::RecvSw, 50, 60, Cause::Local),
        ];
        let d = walk(&spans, &[], 0, 0, 60);
        assert_eq!(d.total_ns(), 60, "conservation even with holes");
        assert_eq!(d.get(Blame::Idle), 30 + 10);
        assert_eq!(d.get(Blame::Compute), 10);
        assert_eq!(d.get(Blame::RecvSw), 10);
    }

    #[test]
    fn empty_interval_and_empty_graph() {
        let d = walk(&[], &[], 0, 7, 7);
        assert_eq!(d.total_ns(), 0);
        assert!(d.segments.is_empty());
        let d = walk(&[], &[], 3, 0, 100);
        assert_eq!(d.get(Blame::Idle), 100, "no data, all idle");
    }

    #[test]
    fn wire_tiling_clamps_to_interval() {
        // Delivery at 100 but the walk interval starts at 90: the
        // transfer's 30ns of waits cannot all fit; the tiling clamps.
        let spans = [span(1, Blame::Idle, 0, 100, Cause::Message { msg: 0 })];
        let transfers = [Transfer {
            src_track: 0,
            wire_start_ns: 20,
            delivered_ns: 100,
            fifo_wait_ns: 20,
            link_wait_ns: 10,
        }];
        let d = walk(&spans, &transfers, 1, 90, 100);
        assert_eq!(d.total_ns(), 10);
        assert_eq!(d.get(Blame::FifoWait), 10, "fifo clamps first");
        assert_eq!(d.get(Blame::LinkWait), 0);
        assert_eq!(d.get(Blame::Wire), 0);
    }

    #[test]
    fn census_counts_uncontended() {
        let transfers = [
            Transfer {
                src_track: 0,
                wire_start_ns: 0,
                delivered_ns: 10,
                fifo_wait_ns: 0,
                link_wait_ns: 0,
            },
            Transfer {
                src_track: 1,
                wire_start_ns: 0,
                delivered_ns: 10,
                fifo_wait_ns: 5,
                link_wait_ns: 0,
            },
        ];
        let c = Census::of(&transfers);
        assert_eq!(c.transfers, 2);
        assert_eq!(c.uncontended, 1);
        assert!((c.fraction() - 0.5).abs() < 1e-12);
        let mut reg = MetricsRegistry::new();
        c.export_metrics(&mut reg);
        assert_eq!(
            reg.get("critpath.census.transfers").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(reg.get("critpath.census.frac").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn decomposition_exports_metrics() {
        let spans = [
            span(0, Blame::Entry, 0, 25, Cause::Local),
            span(0, Blame::Wire, 25, 100, Cause::Local),
        ];
        let d = walk(&spans, &[], 0, 0, 100);
        let mut reg = MetricsRegistry::new();
        d.export_metrics(&mut reg);
        assert_eq!(reg.get("critpath.total_ns").unwrap().as_f64(), Some(100.0));
        assert_eq!(reg.get("critpath.entry.ns").unwrap().as_f64(), Some(25.0));
        assert_eq!(reg.get("critpath.wire.frac").unwrap().as_f64(), Some(0.75));
        assert!(reg.get("critpath.compute.ns").is_none(), "zero omitted");
    }

    #[test]
    fn blame_index_round_trips() {
        for (i, b) in Blame::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        let keys: std::collections::BTreeSet<_> = Blame::ALL.iter().map(|b| b.key()).collect();
        assert_eq!(keys.len(), Blame::COUNT, "keys unique");
    }
}
