//! A streaming, mergeable quantile sketch for wall-clock latencies.
//!
//! The power-of-two histograms in [`crate::registry`] are perfect for
//! simulated nanoseconds spanning nine decades, but host-side profiling
//! needs finer resolution: the difference between a 210 us and a 260 us
//! collective run disappears inside one pow2 bucket. [`QuantileSketch`]
//! keeps a bounded set of weighted samples (a deterministic KLL-style
//! compactor cascade) from which any quantile can be read with relative
//! rank error shrinking as the buffer capacity `k` grows.
//!
//! Properties the profiling pipeline relies on:
//!
//! * **streaming** — O(k · log(n/k)) memory, amortized O(1) insert;
//! * **mergeable** — two sketches combine into one that approximates the
//!   union of their inputs (used when per-round timings are collected
//!   independently and summarized together);
//! * **deterministic** — compaction keeps alternating halves instead of
//!   coin-flipping, so identical inputs always produce identical
//!   summaries (same-seed reproducibility is a repo-wide invariant);
//! * **exact at the tails** — `min` and `max` are tracked exactly, and
//!   `quantile(0.0)` / `quantile(1.0)` return them.
//!
//! # Examples
//!
//! ```
//! use obs::QuantileSketch;
//!
//! let mut s = QuantileSketch::new();
//! for i in 1..=10_000u32 {
//!     s.record(f64::from(i));
//! }
//! let p50 = s.quantile(0.5).unwrap();
//! assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.05);
//! assert_eq!(s.quantile(0.0), Some(1.0));
//! assert_eq!(s.quantile(1.0), Some(10_000.0));
//! ```

/// Default per-level buffer capacity. Error is roughly `O(1/k)` of the
/// rank; 256 keeps p50/p90/p99 within a few percent for millions of
/// samples while the whole sketch stays a few tens of KB.
pub const DEFAULT_K: usize = 256;

/// A deterministic mergeable quantile sketch (KLL-style compactor
/// cascade over `f64` samples).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// `levels[i]` holds samples of weight `2^i`, unsorted.
    levels: Vec<Vec<f64>>,
    /// Per-level compaction parity: which half survives next time.
    parity: Vec<bool>,
    /// Buffer capacity per level.
    k: usize,
    /// Exact number of samples recorded (directly or via merge).
    count: u64,
    /// Exact running sum, for the mean.
    sum: f64,
    /// Exact extremes.
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch with the default capacity [`DEFAULT_K`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_K)
    }

    /// An empty sketch with per-level buffer capacity `k` (min 8).
    pub fn with_capacity(k: usize) -> Self {
        QuantileSketch {
            levels: vec![Vec::new()],
            parity: vec![false],
            k: k.max(8),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.levels[0].push(x);
        self.compact_from(0);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (`q` clamped to `[0, 1]`), `None` when
    /// empty. `q = 0` and `q = 1` return the exact min/max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // Gather (value, weight) pairs, sort by value, walk to the
        // target cumulative weight.
        let mut weighted: Vec<(f64, u64)> = Vec::new();
        for (lvl, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << lvl;
            weighted.extend(buf.iter().map(|&v| (v, w)));
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (v, w) in weighted {
            seen += w;
            if seen >= target {
                return Some(v);
            }
        }
        Some(self.max)
    }

    /// Merges `other` into `self`. The result approximates the sketch of
    /// the concatenated input streams.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
            self.parity.push(false);
        }
        for (lvl, buf) in other.levels.iter().enumerate() {
            self.levels[lvl].extend_from_slice(buf);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.compact_from(0);
    }

    /// Bounded memory footprint: total buffered samples across levels.
    pub fn stored(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Cascades compactions upward from `level` until every buffer is
    /// under capacity.
    fn compact_from(&mut self, level: usize) {
        let mut lvl = level;
        while lvl < self.levels.len() {
            if self.levels[lvl].len() < self.k {
                lvl += 1;
                continue;
            }
            let mut buf = std::mem::take(&mut self.levels[lvl]);
            buf.sort_by(f64::total_cmp);
            // Keep every other element; alternate the surviving half per
            // compaction so the rank bias cancels deterministically.
            let offset = usize::from(self.parity[lvl]);
            self.parity[lvl] = !self.parity[lvl];
            let survivors: Vec<f64> = buf.into_iter().skip(offset).step_by(2).collect();
            if self.levels.len() == lvl + 1 {
                self.levels.push(Vec::new());
                self.parity.push(false);
            }
            self.levels[lvl + 1].extend(survivors);
            lvl += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u32) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for i in 1..=n {
            s.record(f64::from(i));
        }
        s
    }

    #[test]
    fn small_inputs_are_exact() {
        let mut s = QuantileSketch::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.5), Some(3.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn uniform_quantiles_within_tolerance() {
        let s = uniform(100_000);
        for (q, expect) in [
            (0.1, 10_000.0),
            (0.5, 50_000.0),
            (0.9, 90_000.0),
            (0.99, 99_000.0),
        ] {
            let got = s.quantile(q).unwrap();
            let rel = (got - expect).abs() / expect;
            assert!(
                rel < 0.05,
                "q={q}: got {got}, want ~{expect} (rel {rel:.4})"
            );
        }
    }

    #[test]
    fn skewed_distribution_quantiles() {
        // 99% small values, 1% large: p50 stays small, p995 is large.
        let mut s = QuantileSketch::new();
        for i in 0..10_000u32 {
            if i % 100 == 0 {
                s.record(1_000_000.0 + f64::from(i));
            } else {
                s.record(f64::from(i % 50));
            }
        }
        assert!(s.quantile(0.5).unwrap() < 100.0);
        assert!(s.quantile(0.995).unwrap() >= 1_000_000.0);
    }

    #[test]
    fn memory_stays_bounded() {
        let s = uniform(1_000_000);
        assert_eq!(s.count(), 1_000_000);
        // ~k per level, log2(n/k) levels: well under 40 * k.
        assert!(s.stored() < 40 * DEFAULT_K, "stored {} samples", s.stored());
    }

    #[test]
    fn merge_approximates_union() {
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        let mut whole = QuantileSketch::new();
        for i in 1..=50_000u32 {
            left.record(f64::from(i));
            whole.record(f64::from(i));
        }
        for i in 50_001..=100_000u32 {
            right.record(f64::from(i));
            whole.record(f64::from(i));
        }
        left.merge(&right);
        assert_eq!(left.count(), 100_000);
        assert_eq!(left.min(), Some(1.0));
        assert_eq!(left.max(), Some(100_000.0));
        for q in [0.25, 0.5, 0.75, 0.9] {
            let merged = left.quantile(q).unwrap();
            let expect = q * 100_000.0;
            let rel = (merged - expect).abs() / expect;
            assert!(rel < 0.06, "q={q}: merged {merged} vs {expect}");
        }
        // Mean is tracked exactly through merges.
        assert!((left.mean() - whole.mean()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = uniform(1000);
        let before = s.clone();
        s.merge(&QuantileSketch::new());
        assert_eq!(s, before);
        let mut e = QuantileSketch::new();
        e.merge(&before);
        assert_eq!(e.count(), 1000);
        assert_eq!(e.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = uniform(123_457);
        let b = uniform(123_457);
        assert_eq!(a, b);
        assert_eq!(a.quantile(0.37), b.quantile(0.37));
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut s = QuantileSketch::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        s.record(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), Some(2.0));
    }
}
