//! Structural run comparison: verdicts, first-divergence explanation,
//! and noise-aware delta tables.
//!
//! [`diff`] aligns two [`RunRecord`]s and reports
//!
//! * a verdict — [`Verdict::ByteIdentical`] (canonical serializations
//!   are equal), [`Verdict::SemanticallyIdentical`] (the executions are
//!   equal; only meta / host-side metrics differ), or
//!   [`Verdict::Divergent`];
//! * on divergence, the **first divergent event** in firing order with
//!   a causal context window: the last N ancestor events reached by
//!   walking the provenance parent edges backward through the common
//!   prefix (guaranteed identical in both runs), plus the ranks they
//!   touch and an expected-vs-got rendering;
//! * for intentionally-different runs, per-category blame deltas (which
//!   sum to the elapsed-time delta whenever each side's blame totals
//!   conserve — the critpath invariant) and metric deltas flagged for
//!   significance with the same 10% floor perfgate applies below its
//!   MAD-derived thresholds.
//!
//! Identity verdicts are additionally *certified* only when neither
//! side dropped traced messages: a truncated trace can hide a
//! divergence, so the comparator refuses to vouch for it.

use std::collections::HashMap;

use crate::record::{describe_event, event_ranks, RecEvent, RunRecord};

/// Ancestor events included in a divergence context window.
pub const DEFAULT_CONTEXT: usize = 8;

/// Relative-change floor below which a metric delta is noise, mirroring
/// perfgate's `MIN_THRESHOLD`.
pub const METRIC_THRESHOLD: f64 = 0.10;

/// The comparison verdict, ordered from strongest to weakest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Canonical serializations are byte-equal.
    ByteIdentical,
    /// The executions are identical (events, transfers, spans, finish,
    /// elapsed); only meta / host-side metrics differ.
    SemanticallyIdentical,
    /// The executions differ.
    Divergent,
}

impl Verdict {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::ByteIdentical => "byte-identical",
            Verdict::SemanticallyIdentical => "semantically-identical",
            Verdict::Divergent => "DIVERGENT",
        }
    }

    /// True for either identity verdict.
    pub fn identical(&self) -> bool {
        !matches!(self, Verdict::Divergent)
    }
}

/// The first point where the two runs disagree.
#[derive(Debug, Clone, Default)]
pub struct Divergence {
    /// Which artifact diverged first: `events`, `transfers`, `spans`,
    /// `finish`, `elapsed`, or `dropped`.
    pub component: String,
    /// Index of the first differing entry within that artifact.
    pub index: usize,
    /// Run A's entry at that index, rendered; `"<absent>"` if A ended.
    pub expected: String,
    /// Run B's entry at that index, rendered; `"<absent>"` if B ended.
    pub got: String,
    /// The divergent event from run A, when the component is `events`.
    pub event: Option<RecEvent>,
    /// Causal context: ancestor events of the divergence point, newest
    /// first, from the common prefix (identical in both runs).
    pub context: Vec<RecEvent>,
    /// Ranks touched by the divergent event and its context window.
    pub ranks: Vec<u32>,
}

/// One per-category blame delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameDelta {
    /// Category key.
    pub category: String,
    /// Run A nanoseconds.
    pub a_ns: u64,
    /// Run B nanoseconds.
    pub b_ns: u64,
}

impl BlameDelta {
    /// Signed change, B minus A.
    pub fn delta_ns(&self) -> i64 {
        self.b_ns as i64 - self.a_ns as i64
    }
}

/// One metric delta with its significance flag.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Run A value.
    pub a: f64,
    /// Run B value.
    pub b: f64,
    /// Relative change `|b-a| / max(|a|, ε)`.
    pub rel: f64,
    /// True when the change clears the noise floor.
    pub significant: bool,
}

/// The full comparison result.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The verdict.
    pub verdict: Verdict,
    /// True when an identity verdict is trustworthy: neither side
    /// dropped traced messages. Always false alongside an untruncated
    /// explanation when drops occurred.
    pub certified: bool,
    /// Why certification was refused, when it was.
    pub uncertified_reason: Option<String>,
    /// First divergence, present iff the verdict is `Divergent`.
    pub first: Option<Divergence>,
    /// Per-category blame deltas (union of both sides' categories).
    pub blame: Vec<BlameDelta>,
    /// Run A elapsed nanoseconds.
    pub elapsed_a_ns: u64,
    /// Run B elapsed nanoseconds.
    pub elapsed_b_ns: u64,
    /// Metric deltas over the union of both snapshots, sorted by name.
    pub metrics: Vec<MetricDelta>,
}

impl DiffReport {
    /// Signed elapsed-time change, B minus A, nanoseconds.
    pub fn elapsed_delta_ns(&self) -> i64 {
        self.elapsed_b_ns as i64 - self.elapsed_a_ns as i64
    }

    /// Sum of the per-category blame deltas. Equals
    /// [`DiffReport::elapsed_delta_ns`] whenever both records carry
    /// conserving blame totals — the conservation check differential
    /// tests assert.
    pub fn blame_delta_sum_ns(&self) -> i64 {
        self.blame.iter().map(BlameDelta::delta_ns).sum()
    }

    /// The metric deltas that cleared the noise floor.
    pub fn significant_metrics(&self) -> impl Iterator<Item = &MetricDelta> {
        self.metrics.iter().filter(|m| m.significant)
    }
}

/// Compares two runs with the default context window and noise floor.
pub fn diff(a: &RunRecord, b: &RunRecord) -> DiffReport {
    diff_with(a, b, DEFAULT_CONTEXT, METRIC_THRESHOLD)
}

/// Compares two runs; `context` bounds the ancestor window and
/// `metric_threshold` sets the relative-change significance floor.
pub fn diff_with(
    a: &RunRecord,
    b: &RunRecord,
    context: usize,
    metric_threshold: f64,
) -> DiffReport {
    let verdict = if a.to_json_string() == b.to_json_string() {
        Verdict::ByteIdentical
    } else if a.same_execution(b) {
        Verdict::SemanticallyIdentical
    } else {
        Verdict::Divergent
    };
    let first = (verdict == Verdict::Divergent).then(|| first_divergence(a, b, context));
    let (certified, uncertified_reason) = certification(a, b, verdict);
    DiffReport {
        verdict,
        certified,
        uncertified_reason,
        first,
        blame: blame_deltas(a, b),
        elapsed_a_ns: a.elapsed_ns,
        elapsed_b_ns: b.elapsed_ns,
        metrics: metric_deltas(a, b, metric_threshold),
    }
}

fn certification(a: &RunRecord, b: &RunRecord, verdict: Verdict) -> (bool, Option<String>) {
    if !verdict.identical() {
        return (false, None);
    }
    let mut dropped = Vec::new();
    if a.dropped_messages > 0 {
        dropped.push(format!(
            "run A dropped {} traced messages",
            a.dropped_messages
        ));
    }
    if b.dropped_messages > 0 {
        dropped.push(format!(
            "run B dropped {} traced messages",
            b.dropped_messages
        ));
    }
    if dropped.is_empty() {
        (true, None)
    } else {
        (
            false,
            Some(format!(
                "{} — a truncated trace can hide a divergence; raise --trace-cap",
                dropped.join("; ")
            )),
        )
    }
}

/// Locates the first differing entry, preferring the event stream (the
/// finest-grained artifact), then transfers, spans, the finish matrix,
/// and finally the scalar summaries.
fn first_divergence(a: &RunRecord, b: &RunRecord, context: usize) -> Divergence {
    if let Some(i) = first_mismatch(&a.events, &b.events) {
        let event = a.events.get(i).cloned();
        let ctx = context_window(a, b, i, context);
        let mut ranks: Vec<u32> = Vec::new();
        for ev in a.events.get(i).iter().copied().chain(b.events.get(i)) {
            ranks.extend(event_ranks(ev));
        }
        for ev in &ctx {
            ranks.extend(event_ranks(ev));
        }
        ranks.sort_unstable();
        ranks.dedup();
        return Divergence {
            component: "events".into(),
            index: i,
            expected: render(a.events.get(i).map(describe_event)),
            got: render(b.events.get(i).map(describe_event)),
            event,
            context: ctx,
            ranks,
        };
    }
    if let Some(i) = first_mismatch(&a.transfers, &b.transfers) {
        return Divergence {
            component: "transfers".into(),
            index: i,
            expected: render(a.transfers.get(i).map(|t| format!("{t:?}"))),
            got: render(b.transfers.get(i).map(|t| format!("{t:?}"))),
            ..Divergence::default()
        };
    }
    if let Some(i) = first_mismatch(&a.spans, &b.spans) {
        return Divergence {
            component: "spans".into(),
            index: i,
            expected: render(a.spans.get(i).map(|s| format!("{s:?}"))),
            got: render(b.spans.get(i).map(|s| format!("{s:?}"))),
            ..Divergence::default()
        };
    }
    if let Some(i) = first_mismatch(&a.finish_ns, &b.finish_ns) {
        return Divergence {
            component: "finish".into(),
            index: i,
            expected: render(a.finish_ns.get(i).map(|s| format!("{s:?}"))),
            got: render(b.finish_ns.get(i).map(|s| format!("{s:?}"))),
            ..Divergence::default()
        };
    }
    if a.dropped_messages != b.dropped_messages {
        return Divergence {
            component: "dropped".into(),
            expected: a.dropped_messages.to_string(),
            got: b.dropped_messages.to_string(),
            ..Divergence::default()
        };
    }
    Divergence {
        component: "elapsed".into(),
        expected: format!("{}ns", a.elapsed_ns),
        got: format!("{}ns", b.elapsed_ns),
        ..Divergence::default()
    }
}

fn render(s: Option<String>) -> String {
    s.unwrap_or_else(|| "<absent>".into())
}

fn first_mismatch<T: PartialEq>(a: &[T], b: &[T]) -> Option<usize> {
    let common = a.len().min(b.len());
    (0..common).find(|&i| a[i] != b[i]).or({
        if a.len() != b.len() {
            Some(common)
        } else {
            None
        }
    })
}

/// Walks provenance parent edges backward from the divergence point,
/// collecting up to `limit` ancestors. Only events in the common prefix
/// (`index` exclusive) qualify — those fired identically in both runs,
/// so the window is shared causal history, not one run's opinion.
fn context_window(a: &RunRecord, b: &RunRecord, index: usize, limit: usize) -> Vec<RecEvent> {
    let by_seq: HashMap<u64, &RecEvent> = a.events[..index].iter().map(|e| (e.seq, e)).collect();
    // Start from whichever side has an entry at the divergence point;
    // parents inside the common prefix are identical either way.
    let start = a.events.get(index).or_else(|| b.events.get(index));
    let mut cursor = start.and_then(|e| e.parent);
    let mut out = Vec::new();
    while out.len() < limit {
        let Some(seq) = cursor else { break };
        let Some(ev) = by_seq.get(&seq) else { break };
        out.push((*ev).clone());
        cursor = ev.parent;
    }
    // Fall back to recency when the causal chain is unavailable (no
    // provenance, or the parent fired at/after the divergence): the
    // last events before the divergence point are the next-best window.
    if out.is_empty() {
        out.extend(a.events[..index].iter().rev().take(limit).cloned());
    }
    out
}

fn blame_deltas(a: &RunRecord, b: &RunRecord) -> Vec<BlameDelta> {
    let mut categories: Vec<&String> = a.blame_ns.keys().chain(b.blame_ns.keys()).collect();
    categories.sort();
    categories.dedup();
    categories
        .into_iter()
        .map(|cat| BlameDelta {
            category: cat.clone(),
            a_ns: a.blame_ns.get(cat).copied().unwrap_or(0),
            b_ns: b.blame_ns.get(cat).copied().unwrap_or(0),
        })
        .collect()
}

fn metric_deltas(a: &RunRecord, b: &RunRecord, threshold: f64) -> Vec<MetricDelta> {
    let mut names: Vec<&String> = a.metrics.keys().chain(b.metrics.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let av = a.metrics.get(name).copied().unwrap_or(0.0);
            let bv = b.metrics.get(name).copied().unwrap_or(0.0);
            let rel = (bv - av).abs() / av.abs().max(f64::EPSILON);
            MetricDelta {
                name: name.clone(),
                a: av,
                b: bv,
                rel,
                significant: rel > threshold,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecEvent;

    fn base() -> RunRecord {
        let mut rec = RunRecord {
            elapsed_ns: 1000,
            ..RunRecord::default()
        };
        for i in 0..6u64 {
            rec.events.push(RecEvent {
                seq: i,
                at_ns: i * 100,
                kind: "rank_resume".into(),
                a: i % 3,
                b: 0,
                parent: i.checked_sub(1),
            });
        }
        rec.blame_ns.insert("wire".into(), 600);
        rec.blame_ns.insert("entry".into(), 400);
        rec.metrics.insert("exec.messages".into(), 10.0);
        rec
    }

    #[test]
    fn self_diff_is_byte_identical_and_certified() {
        let rec = base();
        let report = diff(&rec, &rec);
        assert_eq!(report.verdict, Verdict::ByteIdentical);
        assert!(report.certified);
        assert!(report.first.is_none());
        assert_eq!(report.elapsed_delta_ns(), 0);
        assert_eq!(report.blame_delta_sum_ns(), 0);
    }

    #[test]
    fn meta_only_changes_are_semantically_identical() {
        let a = base();
        let mut b = base();
        b.meta.insert("date".into(), "2026-08-09".into());
        b.metrics.insert("engine.prof.wall_ns".into(), 5.0);
        let report = diff(&a, &b);
        assert_eq!(report.verdict, Verdict::SemanticallyIdentical);
        assert!(report.certified);
    }

    #[test]
    fn perturbed_event_is_localized_with_causal_context() {
        let a = base();
        let mut b = base();
        b.events[4].at_ns += 7;
        let report = diff(&a, &b);
        assert_eq!(report.verdict, Verdict::Divergent);
        assert!(!report.certified, "divergent runs are never certified");
        let first = report.first.expect("divergence located");
        assert_eq!(first.component, "events");
        assert_eq!(first.index, 4);
        assert!(first.expected.contains("@ 400ns"), "{}", first.expected);
        assert!(first.got.contains("@ 407ns"), "{}", first.got);
        // Ancestors 3, 2, 1, 0 via the parent chain, newest first.
        let seqs: Vec<u64> = first.context.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 2, 1, 0]);
        assert!(!first.ranks.is_empty());
    }

    #[test]
    fn truncated_stream_diverges_at_the_missing_tail() {
        let a = base();
        let mut b = base();
        b.events.pop();
        let report = diff(&a, &b);
        let first = report.first.expect("divergence located");
        assert_eq!(first.index, 5);
        assert_eq!(first.got, "<absent>");
    }

    #[test]
    fn context_falls_back_to_recency_without_provenance() {
        let mut a = base();
        let mut b = base();
        for ev in a.events.iter_mut().chain(b.events.iter_mut()) {
            ev.parent = None;
        }
        b.events[3].a = 2;
        let first = diff(&a, &b).first.expect("divergence located");
        assert_eq!(first.index, 3);
        let seqs: Vec<u64> = first.context.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 1, 0], "recency window, newest first");
    }

    #[test]
    fn dropped_messages_refuse_certification() {
        let mut a = base();
        a.dropped_messages = 3;
        let report = diff(&a, &a.clone());
        assert_eq!(report.verdict, Verdict::ByteIdentical);
        assert!(!report.certified);
        let reason = report.uncertified_reason.expect("reason given");
        assert!(reason.contains("dropped 3"), "{reason}");
    }

    #[test]
    fn blame_deltas_sum_to_elapsed_delta_when_conserving() {
        let a = base();
        let mut b = base();
        b.elapsed_ns = 1100;
        *b.blame_ns.get_mut("wire").expect("category") = 650;
        *b.blame_ns.get_mut("entry").expect("category") = 450;
        b.events[0].at_ns += 1; // force divergence
        let report = diff(&a, &b);
        assert_eq!(report.elapsed_delta_ns(), 100);
        assert_eq!(report.blame_delta_sum_ns(), 100);
    }

    #[test]
    fn metric_significance_uses_the_noise_floor() {
        let a = base();
        let mut b = base();
        b.metrics.insert("exec.messages".into(), 10.5); // +5%
        b.metrics.insert("exec.bytes".into(), 100.0); // new: infinite rel
        let report = diff(&a, &b);
        let by_name: std::collections::HashMap<&str, &MetricDelta> = report
            .metrics
            .iter()
            .map(|m| (m.name.as_str(), m))
            .collect();
        assert!(!by_name["exec.messages"].significant, "5% is noise");
        assert!(
            by_name["exec.bytes"].significant,
            "appearing is significant"
        );
    }
}
