//! Run manifests: the provenance header attached to every exported
//! artifact so a `results/*.txt` or trace file is reproducible from its
//! own contents.
//!
//! A manifest records the simulated machine, communicator size `p`,
//! message size `m`, the protocol seed, and any configuration ablations
//! (wire-model flags, placement policy, ...) as ordered key/value
//! pairs.
//!
//! # Examples
//!
//! ```
//! use obs::RunManifest;
//!
//! let m = RunManifest::new("Cray T3D")
//!     .param("p", "64")
//!     .param("m_bytes", "4096")
//!     .param("seed", "0x4850434139");
//! assert!(m.header_lines()[0].starts_with("# machine: Cray T3D"));
//! ```

use crate::json::Json;

/// Provenance for one simulated run or sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    machine: String,
    params: Vec<(String, String)>,
}

impl RunManifest {
    /// A manifest for `machine` with no parameters yet.
    pub fn new(machine: impl Into<String>) -> Self {
        RunManifest {
            machine: machine.into(),
            params: Vec::new(),
        }
    }

    /// Appends one `key: value` parameter (insertion order preserved —
    /// ablations read best in the order they were applied).
    pub fn param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// The machine name this run simulated.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Looks up a parameter by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The manifest as a JSON object (`machine` plus a `params` object).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("machine", Json::str(&self.machine)),
            (
                "params",
                Json::object(self.params.iter().map(|(k, v)| (k.clone(), Json::str(v)))),
            ),
        ])
    }

    /// `# key: value` comment lines for prepending to text artifacts.
    pub fn header_lines(&self) -> Vec<String> {
        let mut lines = vec![format!("# machine: {}", self.machine)];
        lines.extend(self.params.iter().map(|(k, v)| format!("# {k}: {v}")));
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn records_params_in_order() {
        let m = RunManifest::new("IBM SP2")
            .param("p", 32)
            .param("m_bytes", 1024)
            .param("link_contention", true);
        assert_eq!(m.get("p"), Some("32"));
        assert_eq!(m.get("missing"), None);
        let lines = m.header_lines();
        assert_eq!(lines[0], "# machine: IBM SP2");
        assert_eq!(lines[1], "# p: 32");
        assert_eq!(lines[3], "# link_contention: true");
    }

    #[test]
    fn json_round_trips() {
        let m = RunManifest::new("Paragon").param("seed", "0x1");
        let parsed = validate(&m.to_json().to_string_pretty()).unwrap();
        assert_eq!(parsed.get("machine").unwrap().as_str(), Some("Paragon"));
        assert_eq!(
            parsed.get("params").unwrap().get("seed").unwrap().as_str(),
            Some("0x1")
        );
    }
}
