//! The metrics registry: named counters, gauges, and power-of-two
//! histograms collected from every layer of the simulator.
//!
//! Components *export into* a registry — the hot paths keep their own
//! cheap accumulators (plain `u64` adds) and copy them out once per run
//! via an `export_metrics(&self, &mut MetricsRegistry)` method, so
//! metric collection never touches the simulation inner loops.
//!
//! # Examples
//!
//! ```
//! use obs::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter("engine.events_fired", 1234);
//! reg.gauge("net.link.utilization.max", 0.83);
//! reg.observe("exec.msg.bytes", 4096);
//! let snap = reg.snapshot();
//! assert_eq!(snap.get("engine.events_fired").unwrap().as_f64(), Some(1234.0));
//! ```

use std::collections::BTreeMap;

use crate::json::Json;

/// A power-of-two histogram: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` (bucket 0 holds zeros and ones). Mirrors
/// `desim::stats::LogHistogram` but lives here so non-desim layers can
/// record into snapshots without a dependency cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pow2Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
}

impl Default for Pow2Histogram {
    fn default() -> Self {
        Pow2Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }
}

impl Pow2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            (63 - value.leading_zeros()) as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(bucket_floor, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Approximate quantile: the midpoint of the bucket containing the
    /// `q`-th sample (bucket floors would bias p50/p99 low by up to 2x
    /// for small counts). Bucket 0 spans `[0, 2)` and reports 1; bucket
    /// `i >= 1` spans `[2^i, 2^(i+1))` and reports `1.5 * 2^i`. `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i == 0 { 1 } else { 3u64 << (i - 1) });
            }
        }
        None
    }
}

/// One exported metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic count of discrete occurrences.
    Counter(u64),
    /// Point-in-time scalar (utilization, high-water mark, ...).
    Gauge(f64),
    /// Distribution of unsigned samples in power-of-two buckets (boxed:
    /// the bucket array dwarfs the scalar variants).
    Histogram(Box<Pow2Histogram>),
}

impl Metric {
    /// Scalar view of the metric: counter/gauge value, histogram mean.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Metric::Counter(c) => Some(*c as f64),
            Metric::Gauge(g) => Some(*g),
            Metric::Histogram(h) => Some(h.mean()),
        }
    }
}

/// A named collection of metrics with deterministic iteration order.
///
/// Names are dot-separated paths (`"net.link.bytes.max"`); per-entity
/// series append an index (`"exec.rank.3.sw_us"`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name` (creating it at zero).
    pub fn counter(&mut self, name: impl Into<String>, n: u64) {
        match self
            .metrics
            .entry(name.into())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c = c.saturating_add(n),
            other => *other = Metric::Counter(n),
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.insert(name.into(), Metric::Gauge(value));
    }

    /// Records `value` into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: impl Into<String>, value: u64) {
        match self
            .metrics
            .entry(name.into())
            .or_insert_with(|| Metric::Histogram(Box::new(Pow2Histogram::new())))
        {
            Metric::Histogram(h) => h.record(value),
            other => {
                let mut h = Box::new(Pow2Histogram::new());
                h.record(value);
                *other = Metric::Histogram(h);
            }
        }
    }

    /// Number of metrics registered.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been exported yet.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Iterates `(name, metric)` in sorted-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All metrics whose name starts with `prefix`, in name order.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a Metric)> {
        self.metrics
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v))
    }

    /// A point-in-time snapshot as a JSON object keyed by metric name.
    ///
    /// Counters become integers, gauges floats, histograms objects with
    /// `count`/`mean`/`p50`/`p99`/`buckets`.
    pub fn snapshot(&self) -> Json {
        Json::Object(
            self.metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => Json::UInt(*c),
                        Metric::Gauge(g) => Json::Float(*g),
                        Metric::Histogram(h) => Json::object([
                            ("count", Json::UInt(h.count())),
                            ("mean", Json::Float(h.mean())),
                            ("p50", h.quantile(0.5).map(Json::UInt).unwrap_or(Json::Null)),
                            (
                                "p99",
                                h.quantile(0.99).map(Json::UInt).unwrap_or(Json::Null),
                            ),
                            (
                                "buckets",
                                Json::Array(
                                    h.nonzero_buckets()
                                        .into_iter()
                                        .map(|(floor, count)| {
                                            Json::Array(vec![Json::UInt(floor), Json::UInt(count)])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    };
                    (name.clone(), value)
                })
                .collect(),
        )
    }

    /// Text-renderer rows: `(name, kind, value)` per metric, for the
    /// report crate's table renderer.
    pub fn rows(&self) -> Vec<[String; 3]> {
        self.metrics
            .iter()
            .map(|(name, metric)| {
                let (kind, value) = match metric {
                    Metric::Counter(c) => ("counter", format!("{c}")),
                    Metric::Gauge(g) => ("gauge", format!("{g:.3}")),
                    Metric::Histogram(h) => (
                        "histogram",
                        format!(
                            "n={} mean={:.1} p50={} p99={}",
                            h.count(),
                            h.mean(),
                            h.quantile(0.5).unwrap_or(0),
                            h.quantile(0.99).unwrap_or(0),
                        ),
                    ),
                };
                [name.clone(), kind.to_string(), value]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter("a.b", 3);
        r.counter("a.b", 4);
        assert_eq!(r.get("a.b"), Some(&Metric::Counter(7)));
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.gauge("x", 1.0);
        r.gauge("x", 2.5);
        assert_eq!(r.get("x").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Pow2Histogram::new();
        for v in [0u64, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        // Quantiles report bucket midpoints: bucket 0 ([0,2)) reads 1,
        // the 1024 bucket ([1024,2048)) reads 1536.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(1536));
        assert_eq!(h.sum(), 1030);
        assert!((h.mean() - 206.0).abs() < 1.0);
        let buckets = h.nonzero_buckets();
        assert!(buckets.contains(&(0, 2))); // 0 and 1
        assert!(buckets.contains(&(2, 2))); // 2 and 3
        assert!(buckets.contains(&(1024, 1)));
    }

    #[test]
    fn snapshot_is_valid_json() {
        let mut r = MetricsRegistry::new();
        r.counter("engine.events", 10);
        r.gauge("net.util", 0.5);
        r.observe("lat", 100);
        r.observe("lat", 200);
        let text = r.snapshot().to_string_pretty();
        let parsed = validate(&text).expect("snapshot parses");
        assert_eq!(parsed.get("engine.events").unwrap().as_f64(), Some(10.0));
        assert_eq!(
            parsed.get("lat").unwrap().get("count").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn prefix_iteration_is_exact() {
        let mut r = MetricsRegistry::new();
        r.counter("net.link.0.bytes", 1);
        r.counter("net.link.1.bytes", 2);
        r.counter("network.other", 3);
        let names: Vec<_> = r.with_prefix("net.link.").map(|(n, _)| n).collect();
        assert_eq!(names, vec!["net.link.0.bytes", "net.link.1.bytes"]);
    }

    #[test]
    fn rows_render_all_kinds() {
        let mut r = MetricsRegistry::new();
        r.counter("c", 1);
        r.gauge("g", 2.0);
        r.observe("h", 8);
        let rows = r.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][1], "counter");
        assert_eq!(rows[1][1], "gauge");
        assert_eq!(rows[2][1], "histogram");
    }
}
