//! # obs — low-overhead simulator observability
//!
//! The measurement substrate for the HPCA'97 reproduction: the paper's
//! whole argument decomposes measured time (`T(m,p) = T0(p) + D(m,p)`),
//! and this crate gives the simulator the same power over its own runs —
//! *where* does simulated time go (software overhead vs. wire vs.
//! blocked-waiting), which links saturate, and why two schedules differ.
//!
//! The pieces:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and power-of-two
//!   histograms. Simulator components keep their own cheap accumulators
//!   and export into a registry once per run.
//! * [`ChromeTrace`] — span/flow sink producing Chrome Trace Event
//!   Format JSON (loadable in Perfetto / `chrome://tracing`): one track
//!   per MPI rank, async arrows for messages.
//! * [`RunManifest`] — provenance header (machine, p, m, seed, config
//!   ablations) attached to every exported artifact.
//! * [`QuantileSketch`] — streaming mergeable quantile summary for
//!   host-side wall-clock latencies where pow2 buckets are too coarse.
//! * [`Profiler`] — named wall-clock timers (zero-cost when disabled)
//!   for profiling the simulator itself.
//! * [`prom`] — Prometheus text-exposition export of a registry.
//! * [`critpath`] — causal critical-path reconstruction: walks blame
//!   spans backward from completion and decomposes end-to-end latency
//!   into exact per-category totals, plus the contention census.
//!
//! The crate is intentionally dependency-free — even of `desim` — so
//! every layer of the stack can feed it without cycles. Times cross the
//! boundary as integer nanoseconds or float microseconds.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod critpath;
pub mod diff;
pub mod json;
pub mod manifest;
pub mod prof;
pub mod prom;
pub mod quantile;
pub mod record;
pub mod registry;
pub mod trace;

pub use diff::{DiffReport, Verdict};
pub use json::{validate, Json};
pub use manifest::RunManifest;
pub use prof::Profiler;
pub use quantile::QuantileSketch;
pub use record::RunRecord;
pub use registry::{Metric, MetricsRegistry, Pow2Histogram};
pub use trace::ChromeTrace;
