//! Chrome Trace Event Format export.
//!
//! [`ChromeTrace`] accumulates events and serializes them as a JSON
//! *array* — the format's simplest container, accepted by Perfetto and
//! `chrome://tracing`. The simulator maps one *process* per simulated
//! machine and one *thread track* per MPI rank; message transfers become
//! flow events ("async arrows") from the sender's track to the
//! receiver's.
//!
//! Timestamps are microseconds (`ts`/`dur` are `f64` µs per the spec);
//! callers convert from the simulator's integer nanoseconds at the
//! boundary.
//!
//! # Examples
//!
//! ```
//! use obs::ChromeTrace;
//!
//! let mut t = ChromeTrace::new();
//! t.thread_name(0, 3, "rank 3");
//! t.complete(0, 3, "send", 1.0, 2.5, &[("bytes", "4096")]);
//! t.flow("msg", 42, (0, 1, 1.5), (0, 2, 3.0));
//! let json = t.to_json_string();
//! assert!(json.starts_with('['));
//! ```

use crate::json::Json;

/// Builder for a Chrome Trace Event array.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, mut fields: Vec<(&'static str, Json)>, args: &[(&str, &str)]) {
        if !args.is_empty() {
            fields.push((
                "args",
                Json::object(args.iter().map(|&(k, v)| (k, Json::str(v)))),
            ));
        }
        self.events.push(Json::object(fields));
    }

    /// Names the process (`pid`) track — shown as the group header.
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.push(
            vec![
                ("ph", Json::str("M")),
                ("name", Json::str("process_name")),
                ("pid", Json::UInt(u64::from(pid))),
                ("tid", Json::UInt(0)),
                ("ts", Json::Float(0.0)),
            ],
            &[("name", name)],
        );
    }

    /// Names a thread (`tid`) track within a process — one per rank.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.push(
            vec![
                ("ph", Json::str("M")),
                ("name", Json::str("thread_name")),
                ("pid", Json::UInt(u64::from(pid))),
                ("tid", Json::UInt(u64::from(tid))),
                ("ts", Json::Float(0.0)),
            ],
            &[("name", name)],
        );
    }

    /// A complete event (`ph:"X"`): a named span `[start_us, end_us]`
    /// on one track. Zero-length spans are widened to an epsilon so
    /// they stay visible.
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        start_us: f64,
        end_us: f64,
        args: &[(&str, &str)],
    ) {
        let dur = (end_us - start_us).max(0.001);
        self.push(
            vec![
                ("ph", Json::str("X")),
                ("name", Json::str(name)),
                ("pid", Json::UInt(u64::from(pid))),
                ("tid", Json::UInt(u64::from(tid))),
                ("ts", Json::Float(start_us)),
                ("dur", Json::Float(dur)),
            ],
            args,
        );
    }

    /// A flow arrow between two track points — one message in flight.
    /// Each endpoint is `(pid, tid, ts_us)`; `id` ties the start/finish
    /// pair together and must be unique per arrow.
    pub fn flow(&mut self, name: &str, id: u64, src: (u32, u32, f64), dst: (u32, u32, f64)) {
        let (src_pid, src_tid, start_us) = src;
        let (dst_pid, dst_tid, end_us) = dst;
        self.push(
            vec![
                ("ph", Json::str("s")),
                ("name", Json::str(name)),
                ("cat", Json::str("msg")),
                ("id", Json::UInt(id)),
                ("pid", Json::UInt(u64::from(src_pid))),
                ("tid", Json::UInt(u64::from(src_tid))),
                ("ts", Json::Float(start_us)),
            ],
            &[],
        );
        self.push(
            vec![
                ("ph", Json::str("f")),
                ("bp", Json::str("e")),
                ("name", Json::str(name)),
                ("cat", Json::str("msg")),
                ("id", Json::UInt(id)),
                ("pid", Json::UInt(u64::from(dst_pid))),
                ("tid", Json::UInt(u64::from(dst_tid))),
                ("ts", Json::Float(end_us.max(start_us))),
            ],
            &[],
        );
    }

    /// A counter event (`ph:"C"`): a sampled numeric series, rendered
    /// by Perfetto as a stacked area chart.
    pub fn counter(&mut self, pid: u32, name: &str, ts_us: f64, series: &[(&str, f64)]) {
        let args = Json::object(series.iter().map(|&(k, v)| (k, Json::Float(v))));
        self.events.push(Json::object([
            ("ph", Json::str("C")),
            ("name", Json::str(name)),
            ("pid", Json::UInt(u64::from(pid))),
            ("tid", Json::UInt(0)),
            ("ts", Json::Float(ts_us)),
            ("args", args),
        ]));
    }

    /// An instant event (`ph:"i"`): a zero-width marker on a track.
    pub fn instant(&mut self, pid: u32, tid: u32, name: &str, ts_us: f64) {
        self.push(
            vec![
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("name", Json::str(name)),
                ("pid", Json::UInt(u64::from(pid))),
                ("tid", Json::UInt(u64::from(tid))),
                ("ts", Json::Float(ts_us)),
            ],
            &[],
        );
    }

    /// The trace as a JSON value (array of event objects).
    pub fn to_json(&self) -> Json {
        Json::Array(self.events.clone())
    }

    /// The trace serialized as a JSON array — the file Perfetto opens.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn emits_valid_event_array() {
        let mut t = ChromeTrace::new();
        t.process_name(0, "t3d");
        t.thread_name(0, 0, "rank 0");
        t.complete(0, 0, "sw", 0.0, 5.0, &[("step", "1")]);
        t.flow("msg", 1, (0, 0, 2.0), (0, 1, 4.0));
        t.instant(0, 1, "deliver", 4.0);
        t.counter(0, "inflight", 2.0, &[("msgs", 1.0)]);
        let parsed = validate(&t.to_json_string()).expect("valid JSON");
        let events = parsed.as_array().expect("array container");
        assert_eq!(events.len(), t.len());
        for ev in events {
            assert!(ev.get("ph").is_some(), "every event has ph");
            assert!(ev.get("ts").is_some(), "every event has ts");
            assert!(ev.get("pid").is_some(), "every event has pid");
            assert!(ev.get("tid").is_some(), "every event has tid");
        }
    }

    #[test]
    fn zero_length_spans_get_visible_width() {
        let mut t = ChromeTrace::new();
        t.complete(0, 0, "spike", 1.0, 1.0, &[]);
        let parsed = validate(&t.to_json_string()).unwrap();
        let dur = parsed.as_array().unwrap()[0].get("dur").unwrap().as_f64();
        assert!(dur.unwrap() > 0.0);
    }

    #[test]
    fn flow_pairs_share_an_id() {
        let mut t = ChromeTrace::new();
        t.flow("m", 77, (0, 2, 1.0), (0, 5, 9.0));
        let parsed = validate(&t.to_json_string()).unwrap();
        let events = parsed.as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("s"));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("f"));
        assert_eq!(events[0].get("id"), events[1].get("id"));
    }
}
