//! Canonical run-record serialization — the exchange format of the
//! differential-observability layer.
//!
//! A [`RunRecord`] is everything two runs need in order to be compared
//! structurally: the fired-event stream with causal parent edges, the
//! per-message transfer blame spans, the per-rank phase timeline, the
//! per-segment finish matrix, the critical-path blame totals and
//! contention census, and a flat metrics snapshot. The executor layer
//! (mpisim) assembles it from its own artifacts; this module owns the
//! schema and the (de)serialization.
//!
//! The format is schema-versioned JSON with deterministic ordering:
//! arrays keep their producer order (which is itself deterministic),
//! objects serialize with sorted keys (see [`crate::Json`]), and the
//! compact form has no whitespace — so byte equality of two serialized
//! records is a meaningful verdict, not an accident of formatting.

use std::collections::BTreeMap;

use crate::json::{validate, Json};

/// Bump when the record layout changes incompatibly. Readers refuse
/// records from a different schema rather than mis-parse them.
pub const SCHEMA_VERSION: u64 = 1;

/// One fired event: the engine's `(seq, at, kind, a, b)` tuple plus the
/// causal parent edge from provenance (`None` for root stimuli or when
/// provenance was off).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecEvent {
    /// Scheduling sequence number.
    pub seq: u64,
    /// Firing instant, nanoseconds.
    pub at_ns: u64,
    /// Stable kind key (`rank_resume`, `message_ready`, `link_grant`,
    /// `schedule_step`, `timer`, `continuation`, `dyn`).
    pub kind: String,
    /// First payload field (see [`event_field_names`]); 0 if unused.
    pub a: u64,
    /// Second payload field; 0 if unused.
    pub b: u64,
    /// Seq of the event that scheduled this one, if known.
    pub parent: Option<u64>,
}

/// Human-readable names of the `(a, b)` payload fields for a kind key;
/// empty strings for unused slots. Mirrors the desim event vocabulary
/// (kept in sync by the cross-crate round-trip tests).
pub fn event_field_names(kind: &str) -> (&'static str, &'static str) {
    match kind {
        "rank_resume" => ("rank", ""),
        "message_ready" => ("src", "dst"),
        "link_grant" => ("link", "grantee"),
        "schedule_step" => ("rank", "step"),
        "timer" => ("id", ""),
        "continuation" => ("slot", ""),
        _ => ("", ""),
    }
}

/// The ranks an event touches, for context-window summaries. `dyn` and
/// `timer` events touch none; `link_grant` touches the grantee.
pub fn event_ranks(ev: &RecEvent) -> Vec<u32> {
    match ev.kind.as_str() {
        "rank_resume" | "schedule_step" => vec![ev.a as u32],
        "message_ready" => vec![ev.a as u32, ev.b as u32],
        "link_grant" => vec![ev.b as u32],
        _ => Vec::new(),
    }
}

/// Renders an event as a one-line human-readable description, e.g.
/// `message_ready(src=0, dst=3) @ 12450ns seq=17`.
pub fn describe_event(ev: &RecEvent) -> String {
    let (na, nb) = event_field_names(&ev.kind);
    let payload = match (na.is_empty(), nb.is_empty()) {
        (true, _) => String::new(),
        (false, true) => format!("{na}={}", ev.a),
        (false, false) => format!("{na}={}, {nb}={}", ev.a, ev.b),
    };
    format!("{}({payload}) @ {}ns seq={}", ev.kind, ev.at_ns, ev.seq)
}

/// One traced message transfer with its blame split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecTransfer {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: u64,
    /// Operation-class key.
    pub class: String,
    /// Instant the send was posted, nanoseconds.
    pub posted_ns: u64,
    /// Instant the wire journey began.
    pub wire_start_ns: u64,
    /// Instant the payload fully arrived.
    pub delivered_ns: u64,
    /// Time queued behind the node's injection engine.
    pub inject_wait_ns: u64,
    /// Time queued behind busy links.
    pub link_wait_ns: u64,
}

/// One attributed phase span on a rank's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecSpan {
    /// The rank.
    pub rank: u32,
    /// Phase-kind label (the executor's span vocabulary).
    pub kind: String,
    /// Span start, nanoseconds.
    pub start_ns: u64,
    /// Span end, nanoseconds.
    pub end_ns: u64,
    /// Rank whose action ended a blocked span, if attributed.
    pub woke_by: Option<u32>,
}

/// The full run record. See the module docs for the layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Free-form run identity: machine, op, ranks, bytes, config knobs.
    pub meta: BTreeMap<String, String>,
    /// End-to-end elapsed time, nanoseconds.
    pub elapsed_ns: u64,
    /// Messages dropped from the trace by the trace cap. A non-zero
    /// value poisons identity certification (see `obs::diff`).
    pub dropped_messages: u64,
    /// The fired-event stream, in firing order. Empty when event
    /// logging was off.
    pub events: Vec<RecEvent>,
    /// Traced transfers, in trace order. Empty when tracing was off.
    pub transfers: Vec<RecTransfer>,
    /// Phase spans, in emission order. Empty when not observed.
    pub spans: Vec<RecSpan>,
    /// `finish_ns[segment][rank]` completion instants.
    pub finish_ns: Vec<Vec<u64>>,
    /// Critical-path blame totals, nanoseconds per category key.
    pub blame_ns: BTreeMap<String, u64>,
    /// Contention census: `(transfers, uncontended)` over the trace.
    pub census: Option<(u64, u64)>,
    /// Flat numeric metrics snapshot.
    pub metrics: BTreeMap<String, f64>,
}

impl RunRecord {
    /// True when the two records describe the *same execution*: equal
    /// event streams, transfers, spans, finish matrices, elapsed time,
    /// and drop counts. Meta and metrics may differ (they carry host
    /// wall-clock noise and run labels).
    pub fn same_execution(&self, other: &RunRecord) -> bool {
        self.elapsed_ns == other.elapsed_ns
            && self.dropped_messages == other.dropped_messages
            && self.events == other.events
            && self.transfers == other.transfers
            && self.spans == other.spans
            && self.finish_ns == other.finish_ns
    }

    /// The order-insensitive canonical form — the *commutation oracle*
    /// of the `ordercheck` explorer.
    ///
    /// A safe same-instant inversion still permutes the raw event
    /// stream (the two swapped events, plus the scheduling seqs of
    /// everything they spawn), so raw byte equality would report every
    /// explored inversion as divergent. What a commuting swap *cannot*
    /// change is the multiset of fired events and their instants, the
    /// transfers' timings, the span timeline, and the finish matrix.
    /// This method projects the record onto exactly that: seqs and
    /// parent edges are cleared, events/transfers/spans are sorted by
    /// their payload-and-time keys, and the host-side `meta`/`metrics`
    /// maps (which carry run labels and wall-clock noise) are dropped.
    /// Two runs whose canonicalized records serialize to identical
    /// bytes are semantically the same execution up to tie order.
    pub fn canonicalized(&self) -> RunRecord {
        let mut c = self.clone();
        c.meta.clear();
        c.metrics.clear();
        for e in &mut c.events {
            e.seq = 0;
            e.parent = None;
        }
        c.events
            .sort_by(|x, y| (x.at_ns, &x.kind, x.a, x.b).cmp(&(y.at_ns, &y.kind, y.a, y.b)));
        c.transfers.sort_by(|x, y| {
            (
                x.posted_ns,
                x.src,
                x.dst,
                x.wire_start_ns,
                x.delivered_ns,
                x.bytes,
            )
                .cmp(&(
                    y.posted_ns,
                    y.src,
                    y.dst,
                    y.wire_start_ns,
                    y.delivered_ns,
                    y.bytes,
                ))
        });
        c.spans.sort_by(|x, y| {
            (x.rank, x.start_ns, x.end_ns, &x.kind).cmp(&(y.rank, y.start_ns, y.end_ns, &y.kind))
        });
        c
    }

    /// Serializes to the canonical [`Json`] tree.
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::Array(vec![
                    Json::UInt(e.seq),
                    Json::UInt(e.at_ns),
                    Json::str(&e.kind),
                    Json::UInt(e.a),
                    Json::UInt(e.b),
                    e.parent.map_or(Json::Null, Json::UInt),
                ])
            })
            .collect();
        let transfers = self
            .transfers
            .iter()
            .map(|t| {
                Json::Array(vec![
                    Json::UInt(t.src as u64),
                    Json::UInt(t.dst as u64),
                    Json::UInt(t.bytes),
                    Json::str(&t.class),
                    Json::UInt(t.posted_ns),
                    Json::UInt(t.wire_start_ns),
                    Json::UInt(t.delivered_ns),
                    Json::UInt(t.inject_wait_ns),
                    Json::UInt(t.link_wait_ns),
                ])
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::Array(vec![
                    Json::UInt(s.rank as u64),
                    Json::str(&s.kind),
                    Json::UInt(s.start_ns),
                    Json::UInt(s.end_ns),
                    s.woke_by.map_or(Json::Null, |w| Json::UInt(w as u64)),
                ])
            })
            .collect();
        let finish = self
            .finish_ns
            .iter()
            .map(|seg| Json::Array(seg.iter().map(|&t| Json::UInt(t)).collect()))
            .collect();
        let mut doc = vec![
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            (
                "meta",
                Json::object(self.meta.iter().map(|(k, v)| (k.clone(), Json::str(v)))),
            ),
            ("elapsed_ns", Json::UInt(self.elapsed_ns)),
            ("dropped_messages", Json::UInt(self.dropped_messages)),
            ("events", Json::Array(events)),
            ("transfers", Json::Array(transfers)),
            ("spans", Json::Array(spans)),
            ("finish_ns", Json::Array(finish)),
            (
                "blame_ns",
                Json::object(
                    self.blame_ns
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v))),
                ),
            ),
            (
                "metrics",
                Json::object(
                    self.metrics
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Float(v))),
                ),
            ),
        ];
        if let Some((transfers, uncontended)) = self.census {
            doc.push((
                "census",
                Json::object([
                    ("transfers", Json::UInt(transfers)),
                    ("uncontended", Json::UInt(uncontended)),
                ]),
            ));
        }
        Json::object(doc)
    }

    /// Canonical compact serialization: byte equality of two outputs is
    /// the `ByteIdentical` verdict.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Parses a serialized record.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on malformed input
    /// or a schema-version mismatch.
    pub fn from_json(text: &str) -> Result<RunRecord, String> {
        let doc = validate(text)?;
        let version = field_u64(&doc, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "run-record schema {version} unsupported (reader speaks {SCHEMA_VERSION})"
            ));
        }
        let mut rec = RunRecord {
            elapsed_ns: field_u64(&doc, "elapsed_ns")?,
            dropped_messages: field_u64(&doc, "dropped_messages")?,
            ..RunRecord::default()
        };
        if let Some(Json::Object(m)) = doc.get("meta") {
            for (k, v) in m {
                rec.meta.insert(
                    k.clone(),
                    v.as_str()
                        .ok_or_else(|| format!("meta.{k}: not a string"))?
                        .to_string(),
                );
            }
        }
        for (i, row) in field_array(&doc, "events")?.iter().enumerate() {
            let row = row
                .as_array()
                .ok_or_else(|| format!("events[{i}]: not an array"))?;
            if row.len() != 6 {
                return Err(format!("events[{i}]: expected 6 fields"));
            }
            rec.events.push(RecEvent {
                seq: as_u64(&row[0]).ok_or_else(|| format!("events[{i}].seq"))?,
                at_ns: as_u64(&row[1]).ok_or_else(|| format!("events[{i}].at_ns"))?,
                kind: row[2]
                    .as_str()
                    .ok_or_else(|| format!("events[{i}].kind"))?
                    .to_string(),
                a: as_u64(&row[3]).ok_or_else(|| format!("events[{i}].a"))?,
                b: as_u64(&row[4]).ok_or_else(|| format!("events[{i}].b"))?,
                parent: match &row[5] {
                    Json::Null => None,
                    other => Some(as_u64(other).ok_or_else(|| format!("events[{i}].parent"))?),
                },
            });
        }
        for (i, row) in field_array(&doc, "transfers")?.iter().enumerate() {
            let row = row
                .as_array()
                .ok_or_else(|| format!("transfers[{i}]: not an array"))?;
            if row.len() != 9 {
                return Err(format!("transfers[{i}]: expected 9 fields"));
            }
            let u = |j: usize, name: &str| {
                as_u64(&row[j]).ok_or_else(|| format!("transfers[{i}].{name}"))
            };
            rec.transfers.push(RecTransfer {
                src: u(0, "src")? as u32,
                dst: u(1, "dst")? as u32,
                bytes: u(2, "bytes")?,
                class: row[3]
                    .as_str()
                    .ok_or_else(|| format!("transfers[{i}].class"))?
                    .to_string(),
                posted_ns: u(4, "posted_ns")?,
                wire_start_ns: u(5, "wire_start_ns")?,
                delivered_ns: u(6, "delivered_ns")?,
                inject_wait_ns: u(7, "inject_wait_ns")?,
                link_wait_ns: u(8, "link_wait_ns")?,
            });
        }
        for (i, row) in field_array(&doc, "spans")?.iter().enumerate() {
            let row = row
                .as_array()
                .ok_or_else(|| format!("spans[{i}]: not an array"))?;
            if row.len() != 5 {
                return Err(format!("spans[{i}]: expected 5 fields"));
            }
            rec.spans.push(RecSpan {
                rank: as_u64(&row[0]).ok_or_else(|| format!("spans[{i}].rank"))? as u32,
                kind: row[1]
                    .as_str()
                    .ok_or_else(|| format!("spans[{i}].kind"))?
                    .to_string(),
                start_ns: as_u64(&row[2]).ok_or_else(|| format!("spans[{i}].start_ns"))?,
                end_ns: as_u64(&row[3]).ok_or_else(|| format!("spans[{i}].end_ns"))?,
                woke_by: match &row[4] {
                    Json::Null => None,
                    other => {
                        Some(as_u64(other).ok_or_else(|| format!("spans[{i}].woke_by"))? as u32)
                    }
                },
            });
        }
        for (i, seg) in field_array(&doc, "finish_ns")?.iter().enumerate() {
            let seg = seg
                .as_array()
                .ok_or_else(|| format!("finish_ns[{i}]: not an array"))?;
            rec.finish_ns.push(
                seg.iter()
                    .map(|t| as_u64(t).ok_or_else(|| format!("finish_ns[{i}]: bad instant")))
                    .collect::<Result<_, _>>()?,
            );
        }
        if let Some(Json::Object(m)) = doc.get("blame_ns") {
            for (k, v) in m {
                rec.blame_ns
                    .insert(k.clone(), as_u64(v).ok_or_else(|| format!("blame_ns.{k}"))?);
            }
        }
        if let Some(c) = doc.get("census") {
            rec.census = Some((field_u64(c, "transfers")?, field_u64(c, "uncontended")?));
        }
        if let Some(Json::Object(m)) = doc.get("metrics") {
            for (k, v) in m {
                rec.metrics
                    .insert(k.clone(), v.as_f64().ok_or_else(|| format!("metrics.{k}"))?);
            }
        }
        Ok(rec)
    }
}

/// Numeric value as `u64` — the parser normalizes small unsigned values
/// to `Int`, so both variants must be accepted.
fn as_u64(j: &Json) -> Option<u64> {
    match j {
        Json::UInt(u) => Some(*u),
        Json::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

fn field_u64(doc: &Json, name: &str) -> Result<u64, String> {
    doc.get(name)
        .and_then(as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{name}'"))
}

fn field_array<'a>(doc: &'a Json, name: &str) -> Result<&'a [Json], String> {
    doc.get(name)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing or non-array field '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let mut rec = RunRecord {
            elapsed_ns: 5000,
            dropped_messages: 0,
            ..RunRecord::default()
        };
        rec.meta.insert("machine".into(), "t3d".into());
        rec.meta.insert("op".into(), "bcast".into());
        rec.events.push(RecEvent {
            seq: 0,
            at_ns: 0,
            kind: "rank_resume".into(),
            a: 0,
            b: 0,
            parent: None,
        });
        rec.events.push(RecEvent {
            seq: 2,
            at_ns: 1200,
            kind: "message_ready".into(),
            a: 0,
            b: 1,
            parent: Some(0),
        });
        rec.transfers.push(RecTransfer {
            src: 0,
            dst: 1,
            bytes: 4096,
            class: "bcast".into(),
            posted_ns: 100,
            wire_start_ns: 150,
            delivered_ns: 1200,
            inject_wait_ns: 0,
            link_wait_ns: 50,
        });
        rec.spans.push(RecSpan {
            rank: 1,
            kind: "recv_wait".into(),
            start_ns: 0,
            end_ns: 1200,
            woke_by: Some(0),
        });
        rec.finish_ns.push(vec![4000, 5000]);
        rec.blame_ns.insert("wire".into(), 3000);
        rec.blame_ns.insert("entry".into(), 2000);
        rec.census = Some((1, 0));
        rec.metrics.insert("exec.messages".into(), 1.0);
        rec
    }

    #[test]
    fn round_trips_through_json() {
        let rec = sample();
        let text = rec.to_json_string();
        let back = RunRecord::from_json(&text).expect("parse");
        assert_eq!(back, rec);
        assert_eq!(back.to_json_string(), text, "canonical form is stable");
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = sample()
            .to_json_string()
            .replace("\"schema_version\":1", "\"schema_version\":999");
        let err = RunRecord::from_json(&text).expect_err("version gate");
        assert!(err.contains("schema 999"), "{err}");
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(RunRecord::from_json("{\"schema_version\":1}").is_err());
        let bad = "{\"schema_version\":1,\"elapsed_ns\":1,\"dropped_messages\":0,\
                   \"events\":[[1,2]],\"transfers\":[],\"spans\":[],\"finish_ns\":[]}";
        let err = RunRecord::from_json(bad).expect_err("short event row");
        assert!(err.contains("events[0]"), "{err}");
    }

    #[test]
    fn same_execution_ignores_meta_and_metrics() {
        let a = sample();
        let mut b = sample();
        b.meta.insert("host".into(), "elsewhere".into());
        b.metrics.insert("engine.prof.wall_ns".into(), 99.0);
        assert!(a.same_execution(&b));
        assert_ne!(a.to_json_string(), b.to_json_string());
        b.events[1].at_ns += 1;
        assert!(!a.same_execution(&b));
    }

    #[test]
    fn canonicalized_erases_tie_order_but_not_semantics() {
        let a = sample();
        // Simulate a commuting adjacent swap: transpose the two events
        // and renumber the seq/parent bookkeeping the swap perturbs.
        let mut b = sample();
        b.events.swap(0, 1);
        for (i, e) in b.events.iter_mut().enumerate() {
            e.seq = 100 + i as u64;
            e.parent = e.parent.map(|_| 99);
        }
        b.meta.insert("perturb".into(), "invert_pair".into());
        b.metrics.insert("engine.prof.wall_ns".into(), 1.0);
        assert_ne!(a.to_json_string(), b.to_json_string());
        assert_eq!(
            a.canonicalized().to_json_string(),
            b.canonicalized().to_json_string()
        );
        // A real semantic change — an event firing at a different
        // instant — survives canonicalization.
        let mut c = sample();
        c.events[1].at_ns += 1;
        assert_ne!(
            a.canonicalized().to_json_string(),
            c.canonicalized().to_json_string()
        );
    }

    #[test]
    fn describe_and_ranks_cover_kinds() {
        let ev = RecEvent {
            seq: 17,
            at_ns: 12450,
            kind: "message_ready".into(),
            a: 0,
            b: 3,
            parent: None,
        };
        assert_eq!(
            describe_event(&ev),
            "message_ready(src=0, dst=3) @ 12450ns seq=17"
        );
        assert_eq!(event_ranks(&ev), vec![0, 3]);
        let timer = RecEvent {
            seq: 1,
            at_ns: 5,
            kind: "timer".into(),
            a: 9,
            b: 0,
            parent: None,
        };
        assert_eq!(describe_event(&timer), "timer(id=9) @ 5ns seq=1");
        assert!(event_ranks(&timer).is_empty());
    }
}
