//! A minimal JSON value, writer, and validating parser.
//!
//! The observability layer exports Chrome Trace Event files and metric
//! snapshots as JSON. The repository builds hermetically (no external
//! crates), so this module provides the small subset of JSON needed:
//! a [`Json`] tree, a compact serializer with correct string escaping
//! and float formatting, and [`validate`] — a strict recursive-descent
//! parser used by tests to prove emitted files are well-formed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are kept sorted (`BTreeMap`) so output is
/// deterministic across runs — important for diffable artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer number (counters can exceed `i64`).
    UInt(u64),
    /// Floating-point number. Non-finite values serialize as `null`,
    /// matching what browsers' `JSON.stringify` does.
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Fetches a member of an object, or `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for other variants.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The text of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (ints and floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest round-trip representation; force a decimal
                    // point so readers see a float.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !members.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses `text` as a single JSON document, returning the value tree.
///
/// Strict: rejects trailing garbage, unterminated strings, bare words.
/// Used by the test suite to assert that every emitted artifact is
/// well-formed JSON.
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the
/// first syntax error.
pub fn validate(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                members.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            b'\\' => {
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        // Surrogates are rejected (the writer never emits them).
                        let ch = char::from_u32(cp).ok_or("surrogate in \\u escape")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control character at byte {}", *pos - 1)),
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number bytes")?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected value at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number at byte {start}"))
    } else if let Ok(i) = text.parse::<i64>() {
        Ok(Json::Int(i))
    } else {
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Json::object([
            ("name", Json::str("bcast \"fast\"\npath")),
            ("count", Json::Int(-3)),
            ("big", Json::UInt(u64::MAX)),
            ("ratio", Json::Float(0.5)),
            ("items", Json::Array(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = v.to_string_compact();
        assert_eq!(validate(&text).unwrap(), v);
        let pretty = v.to_string_pretty();
        assert_eq!(validate(&pretty).unwrap(), v);
    }

    #[test]
    fn escapes_control_characters() {
        let text = Json::str("a\u{1}b").to_string_compact();
        assert_eq!(text, "\"a\\u0001b\"");
        assert_eq!(validate(&text).unwrap(), Json::str("a\u{1}b"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(3.0).to_string_compact(), "3.0");
        match validate("3.0").unwrap() {
            Json::Float(f) => assert_eq!(f, 3.0),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(validate("").is_err());
        assert!(validate("{").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("[1] trailing").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("{\"a\" 1}").is_err());
        assert!(validate("nul").is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v = validate(r#"{"a":[1,2.5,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_f64(), Some(2.5));
    }
}
