//! The mutable network state and wire-time model.
//!
//! [`NetState`] owns the contention bookkeeping for one partition of one
//! machine: a FIFO resource per unidirectional link plus a per-node
//! injection engine (the CPU copy loop, the Paragon co-processor, or the
//! T3D block-transfer engine, per [`SendEngine`]).
//!
//! # Wire model
//!
//! Wormhole routing is approximated in the standard way: a message's
//! header walks the route paying one hop latency per link, the payload
//! streams pipelined behind it at the bottleneck byte rate, and each link
//! is *occupied* for the full serialization time from the moment the
//! header claims it. Two messages wanting the same link therefore
//! serialize — the contention the paper observes in the Paragon mesh and
//! the SP2's blocking Omega stages.

use crate::class::OpClass;
use crate::spec::{MachineSpec, SendEngine};
use desim::{FifoResource, ResourcePool, SimDuration, SimTime, TypedEvent};
use topo::{NodeId, Topology};

/// Timing outcome of pushing one message into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendTiming {
    /// When the sending CPU is free to continue (after any blocking copy
    /// or engine setup; *excludes* the per-message `o_send` overhead,
    /// which the executor charges before calling the network).
    pub cpu_release: SimTime,
    /// When the full payload has arrived at the destination node (before
    /// receive-side software costs).
    pub delivered: SimTime,
    /// Total time this message's segments queued behind the injection
    /// engine (FIFO occupancy wait). Zero for local sends.
    pub inject_wait: SimDuration,
    /// Total time this message's segments queued behind busy links
    /// (contention wait). Zero for local sends.
    pub link_wait: SimDuration,
}

impl SendTiming {
    /// The typed completion event for this send: fires
    /// [`TypedEvent::MessageReady`] at the delivery instant. Actor ids
    /// are whatever the executor keys its state machines by — logical
    /// ranks in `mpisim`, which need not equal physical node ids under
    /// non-identity placement. The executor posts the returned pair on
    /// the engine's allocation-free path.
    pub fn delivery_event(&self, src_actor: usize, dst_actor: usize) -> (SimTime, TypedEvent) {
        (
            self.delivered,
            TypedEvent::MessageReady {
                src: src_actor as u32,
                dst: dst_actor as u32,
            },
        )
    }

    /// The typed CPU-release event: fires [`TypedEvent::RankResume`] for
    /// the sending actor when its CPU is free to continue.
    pub fn release_event(&self, actor: usize) -> (SimTime, TypedEvent) {
        (
            self.cpu_release,
            TypedEvent::RankResume { rank: actor as u32 },
        )
    }

    /// True when the message never waited for a busy injection engine or
    /// link: its wire journey was provably free of contention, so an
    /// event-elision fast path could have predicted its delivery time
    /// from the route alone. Occupancy commits in event-time order, so
    /// the predicate is exact, not heuristic.
    pub fn uncontended(&self) -> bool {
        self.inject_wait == SimDuration::ZERO && self.link_wait == SimDuration::ZERO
    }
}

/// Ablation switches for the wire model (all on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Model per-link occupancy (off ⇒ infinite link bandwidth sharing).
    pub link_contention: bool,
    /// Serialize a node's outgoing messages through its injection engine
    /// (off ⇒ a node can inject unlimited messages at once).
    pub nic_serialization: bool,
    /// Pipelined wormhole propagation (off ⇒ store-and-forward: the full
    /// serialization time is paid on *every* hop).
    pub wormhole: bool,
    /// Packetization: when set, messages are carved into segments of at
    /// most this many bytes, and link/injection occupancy is reserved
    /// per segment instead of per message. Competing traffic then
    /// interleaves at packet granularity (fairer sharing, more events).
    /// `None` reserves whole messages — the default, which the
    /// calibration uses.
    pub segment_bytes: Option<u32>,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            link_contention: true,
            nic_serialization: true,
            wormhole: true,
            segment_bytes: None,
        }
    }
}

/// Per-link and per-class instrumentation, collected only when enabled
/// via [`NetState::enable_instrumentation`] — the default (disabled)
/// path costs one pointer-null check per send.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetInstr {
    /// Raw payload bytes carried per unidirectional link (each message's
    /// payload counted once per link on its route; local sends excluded).
    pub link_bytes: Vec<u64>,
    /// Messages that traversed each unidirectional link.
    pub link_msgs: Vec<u64>,
    /// Total time spent queued waiting for busy links, ns.
    pub link_queue_ns: u64,
    /// Total time spent queued behind the injection engine, ns.
    pub inject_queue_ns: u64,
    /// Messages sent, indexed by [`OpClass::index`].
    pub class_msgs: [u64; OpClass::ALL.len()],
    /// Payload bytes sent, indexed by [`OpClass::index`].
    pub class_bytes: [u64; OpClass::ALL.len()],
}

impl NetInstr {
    /// Exports the instrumentation-only counters: queueing delays,
    /// per-class message/byte counts, and the per-link byte distribution
    /// as a histogram.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("net.queue.link_wait_ns", self.link_queue_ns);
        reg.counter("net.queue.inject_wait_ns", self.inject_queue_ns);
        for op in OpClass::ALL {
            let i = op.index();
            if self.class_msgs[i] > 0 {
                reg.counter(
                    format!("net.class.{}.messages", op.key()),
                    self.class_msgs[i],
                );
                reg.counter(format!("net.class.{}.bytes", op.key()), self.class_bytes[i]);
            }
        }
        for &b in self.link_bytes.iter().filter(|&&b| b > 0) {
            reg.observe("net.link.bytes", b);
        }
    }
}

/// Per-link accumulator for one in-flight send: the local watermark copy
/// plus the batch totals committed back in one
/// [`FifoResource::commit`] per (message, link).
#[derive(Debug, Clone, Copy)]
struct LinkAcc {
    free: SimTime,
    service: SimDuration,
    grants: u64,
}

/// Send-engine timing for one message, independent of any network
/// occupancy state: when the CPU is released, when the payload is ready
/// to enter the wire, and at what byte rate it streams. Because none of
/// these depend on link or FIFO watermarks, an analytic fast path can
/// compute them *before* deciding whether the wire journey itself can be
/// elided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineTiming {
    /// When the sending CPU is free to continue.
    pub cpu_release: SimTime,
    /// When the payload is ready to enter the injection engine.
    pub engine_ready: SimTime,
    /// The engine's streaming rate, ns per byte (the wire streams at the
    /// slower of this and the link rate).
    pub engine_ns_per_byte: f64,
}

/// Admission statistics for the event-elision fast path
/// ([`NetState::send_elided`]): how many transfers took the closed-form
/// path versus falling back to the event-by-event wire model, and why.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElideStats {
    /// Transfers admitted: every path resource provably idle, completion
    /// computed in closed form.
    pub admitted: u64,
    /// Fallbacks because the injection engine or a route link was busy
    /// past the payload's wire entry.
    pub path_busy: u64,
    /// Fallbacks because the wire config is not the calibrated default
    /// (an ablation or packetization run — the closed form only models
    /// whole-message wormhole with contention on).
    pub config_fallback: u64,
    /// Local (src == dst) sends: no wire journey to elide.
    pub local: u64,
}

impl ElideStats {
    /// Total [`NetState::send_elided`] calls observed.
    pub fn attempts(&self) -> u64 {
        self.admitted + self.path_busy + self.config_fallback + self.local
    }

    /// Fraction of attempts admitted to the closed-form path (0 when no
    /// attempts ran).
    pub fn admission_rate(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            0.0
        } else {
            self.admitted as f64 / attempts as f64
        }
    }

    /// Exports `net.elide.*` counters and the admission-rate gauge.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("net.elide.admitted", self.admitted);
        reg.counter("net.elide.path_busy", self.path_busy);
        reg.counter("net.elide.config_fallback", self.config_fallback);
        reg.counter("net.elide.local", self.local);
        reg.gauge("net.elide.admission_rate", self.admission_rate());
    }
}

/// Mutable network state for one `p`-node partition of a machine.
pub struct NetState {
    topo: Box<dyn Topology>,
    links: ResourcePool,
    inject: Vec<FifoResource>,
    config: WireConfig,
    messages: u64,
    bytes: u64,
    /// Logical per-segment FIFO occupancy updates performed (what the
    /// un-coalesced model would have committed individually).
    fifo_updates: u64,
    /// Batched watermark commits actually applied — one per
    /// (message, resource); `fifo_updates - fifo_commits` updates were
    /// coalesced away.
    fifo_commits: u64,
    /// Per-link/per-class accounting; `None` (the default) keeps the
    /// send hot path free of per-link bookkeeping.
    instr: Option<Box<NetInstr>>,
    /// Lazily filled per-pair route cache (routing is deterministic, and
    /// measurement loops re-send along the same pairs thousands of
    /// times). Indexed `src * nodes + dst`.
    route_cache: Vec<Option<topo::Route>>,
    /// Scratch buffer holding the current route's links, so the send hot
    /// path does not re-borrow the cache while acquiring link resources.
    scratch: Vec<topo::LinkId>,
    /// Relative link capacities, precomputed once (indexed by link id) so
    /// the per-segment wire loop avoids a virtual topology call per hop.
    link_cap: Vec<f64>,
    /// Scratch per-link accumulators, parallel to `scratch`.
    link_acc: Vec<LinkAcc>,
    /// Elision-admission statistics ([`NetState::send_elided`]).
    elide: ElideStats,
}

impl std::fmt::Debug for NetState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetState")
            .field("topology", &self.topo.describe())
            .field("messages", &self.messages)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl NetState {
    /// Builds the network state for a `p`-node partition of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `p` exceeds the machine's measured maximum
    /// times four (a guard against accidental huge builds).
    pub fn new(spec: &MachineSpec, p: usize) -> Self {
        Self::with_config(spec, p, WireConfig::default())
    }

    /// Builds with explicit ablation switches.
    pub fn with_config(spec: &MachineSpec, p: usize, config: WireConfig) -> Self {
        assert!(p > 0, "partition must have at least one node");
        assert!(
            p <= spec.max_nodes * 4,
            "partition of {p} nodes is far beyond {}'s {}-node maximum",
            spec.name,
            spec.max_nodes
        );
        let topo = spec.topology.build(p);
        let links = ResourcePool::new(topo.links());
        let link_cap = (0..topo.links())
            .map(|l| topo.link_capacity(topo::LinkId(l)).max(1.0))
            .collect();
        NetState {
            links,
            inject: vec![FifoResource::new(); p],
            topo,
            config,
            messages: 0,
            bytes: 0,
            fifo_updates: 0,
            fifo_commits: 0,
            instr: None,
            route_cache: vec![None; p * p],
            scratch: Vec::new(),
            link_cap,
            link_acc: Vec::new(),
            elide: ElideStats::default(),
        }
    }

    /// Turns on per-link / per-class accounting for subsequent sends.
    /// Counters start at zero; calling again resets them.
    pub fn enable_instrumentation(&mut self) {
        self.instr = Some(Box::new(NetInstr {
            link_bytes: vec![0; self.links.len()],
            link_msgs: vec![0; self.links.len()],
            ..NetInstr::default()
        }));
    }

    /// The collected instrumentation, if enabled.
    pub fn instrumentation(&self) -> Option<&NetInstr> {
        self.instr.as_deref()
    }

    /// Exports network counters into a metrics registry: total traffic,
    /// link busy time and utilization, and — when instrumentation is on —
    /// queueing delays, per-class message counts, and the per-link byte
    /// distribution as a histogram.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("net.messages", self.messages);
        reg.counter("net.bytes", self.bytes);
        reg.counter("net.fifo.updates", self.fifo_updates);
        reg.counter("net.fifo.commits", self.fifo_commits);
        reg.gauge(
            "net.link.busy.total_us",
            self.total_link_busy().as_micros_f64(),
        );
        if let Some((link, busy)) = self.hottest_link() {
            reg.gauge("net.link.busy.max_us", busy.as_micros_f64());
            reg.gauge("net.link.hottest_id", link.0 as f64);
        }
        if let Some(instr) = &self.instr {
            instr.export_metrics(reg);
        }
        if self.elide.attempts() > 0 {
            self.elide.export_metrics(reg);
        }
    }

    /// Elision-admission statistics: all-zero unless
    /// [`NetState::send_elided`] ran.
    pub fn elide_stats(&self) -> ElideStats {
        self.elide
    }

    /// The topology in use.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Number of nodes in the partition.
    pub fn nodes(&self) -> usize {
        self.topo.nodes()
    }

    /// Messages sent through this state so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    /// Payload bytes sent through this state so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes
    }

    /// `(logical per-segment updates, batched commits)` on the FIFO
    /// watermarks so far; the difference is the updates coalesced away.
    pub fn fifo_update_stats(&self) -> (u64, u64) {
        (self.fifo_updates, self.fifo_commits)
    }

    /// Total busy time across all links (contention diagnostics).
    pub fn total_link_busy(&self) -> SimDuration {
        self.links.total_busy()
    }

    /// The busiest link and its accumulated busy time, or `None` when no
    /// traffic has flowed.
    pub fn hottest_link(&self) -> Option<(topo::LinkId, SimDuration)> {
        self.links
            .hottest()
            .filter(|&(_, busy)| busy > SimDuration::ZERO)
            .map(|(id, busy)| (topo::LinkId(id), busy))
    }

    /// Busy time of every link that carried traffic, sorted hottest
    /// first: the link-load distribution of whatever ran on this state.
    pub fn link_loads(&self) -> Vec<(topo::LinkId, SimDuration)> {
        let mut loads: Vec<(topo::LinkId, SimDuration)> = (0..self.links.len())
            .filter_map(|i| {
                let busy = self.links.get(i).expect("in range").busy_time();
                (busy > SimDuration::ZERO).then_some((topo::LinkId(i), busy))
            })
            .collect();
        loads.sort_by_key(|&(_, busy)| std::cmp::Reverse(busy));
        loads
    }

    /// Sends `bytes` from `src` to `dst` starting at `start` (the instant
    /// the sending CPU has finished its per-message overhead). Returns
    /// when the CPU is released and when the payload is delivered.
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range.
    pub fn send(
        &mut self,
        spec: &MachineSpec,
        class: OpClass,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        start: SimTime,
    ) -> SendTiming {
        assert!(
            src.0 < self.nodes() && dst.0 < self.nodes(),
            "node out of range"
        );
        self.messages += 1;
        self.bytes += u64::from(bytes);
        if let Some(instr) = &mut self.instr {
            instr.class_msgs[class.index()] += 1;
            instr.class_bytes[class.index()] += u64::from(bytes);
        }

        let EngineTiming {
            cpu_release,
            engine_ready,
            engine_ns_per_byte,
        } = spec.engine_timing(class, bytes, start);

        if src == dst {
            // Local delivery: just the send-side copy; no wire.
            return SendTiming {
                cpu_release,
                delivered: engine_ready,
                inject_wait: SimDuration::ZERO,
                link_wait: SimDuration::ZERO,
            };
        }

        // Wire traversal, optionally packetized: each segment reserves
        // injection and link occupancy independently, so competing
        // traffic interleaves at segment granularity. Routes are looked
        // up through the per-pair cache (routing is deterministic and
        // measurement loops re-send along the same pairs thousands of
        // times); the link ids are copied into the scratch buffer so the
        // loop below can borrow the resource pools mutably.
        let stream_ns_per_byte = spec.link_ns_per_byte.max(engine_ns_per_byte);
        let total_bytes = bytes.max(spec.min_packet_bytes);
        let seg_size = self
            .config
            .segment_bytes
            .map(|s| s.max(spec.min_packet_bytes))
            .unwrap_or(total_bytes)
            .min(total_bytes);
        let cache_idx = src.0 * self.nodes() + dst.0;
        if self.route_cache[cache_idx].is_none() {
            self.route_cache[cache_idx] = Some(self.topo.route(src, dst));
        }
        self.scratch.clear();
        let cached = self.route_cache[cache_idx].as_ref().expect("filled above");
        self.scratch.extend_from_slice(cached.links());
        let hop = SimDuration::from_nanos_f64(spec.hop_ns);
        if let Some(instr) = &mut self.instr {
            for link in &self.scratch {
                instr.link_bytes[link.0] += u64::from(bytes);
                instr.link_msgs[link.0] += 1;
            }
        }

        // Per-segment FIFO arithmetic runs against *local* watermark
        // copies and is committed back once per (message, resource).
        // Within one send() call no other traffic touches these
        // resources, and a FIFO resource is a single watermark, so the
        // chained local arithmetic is byte-identical to per-segment
        // acquires — at one commit instead of one update per segment.
        let mut inject_free = self.inject[src.0].free_at();
        let mut inject_service = SimDuration::ZERO;
        let mut inject_grants = 0u64;
        self.link_acc.clear();
        for link in &self.scratch {
            self.link_acc.push(LinkAcc {
                free: self.links.free_at(link.0),
                service: SimDuration::ZERO,
                grants: 0,
            });
        }

        // Loop-invariant ablation switches and instrumentation
        // accumulators, hoisted so the per-hop loop stays branch-light.
        let contention = self.config.link_contention;
        let wormhole = self.config.wormhole;
        let mut inject_queue_ns = 0u64;
        let mut link_queue_ns = 0u64;

        let mut remaining = total_bytes;
        let mut segment_ready = engine_ready;
        let mut delivered = engine_ready;
        while remaining > 0 {
            let chunk = remaining.min(seg_size);
            remaining -= chunk;
            let chunk_bytes = f64::from(chunk.max(spec.min_packet_bytes));
            let serialize = SimDuration::from_nanos_f64(chunk_bytes * stream_ns_per_byte);
            let inject_at = if self.config.nic_serialization {
                let at = segment_ready.max(inject_free);
                inject_free = at + serialize;
                inject_service += serialize;
                inject_grants += 1;
                inject_queue_ns += at.since(segment_ready).as_nanos();
                at
            } else {
                segment_ready
            };
            // The next segment may enter the NIC as soon as this one has
            // streamed out of it.
            segment_ready = inject_at + serialize;

            // Header propagation with per-link occupancy. A link's
            // occupancy is the serialization time divided by its relative
            // capacity (fat topologies aggregate bandwidth upward).
            // Store-and-forward re-serializes the full payload per hop.
            let hop_extra = if wormhole { hop } else { hop + serialize };
            let mut t_hdr = inject_at;
            for li in 0..self.scratch.len() {
                let capacity = self.link_cap[self.scratch[li].0];
                let occupancy = if capacity > 1.0 {
                    SimDuration::from_nanos_f64(chunk_bytes * stream_ns_per_byte / capacity)
                } else {
                    serialize
                };
                let at = if contention {
                    let acc = &mut self.link_acc[li];
                    let start = t_hdr.max(acc.free);
                    acc.free = start + occupancy;
                    acc.service += occupancy;
                    acc.grants += 1;
                    link_queue_ns += start.since(t_hdr).as_nanos();
                    start
                } else {
                    t_hdr
                };
                t_hdr = at + hop_extra;
            }
            let seg_delivered = if wormhole { t_hdr + serialize } else { t_hdr };
            delivered = delivered.max(seg_delivered);
        }
        if let Some(instr) = &mut self.instr {
            instr.inject_queue_ns += inject_queue_ns;
            instr.link_queue_ns += link_queue_ns;
        }

        // Commit the batched occupancy: one watermark write per touched
        // resource, regardless of segment count.
        if inject_grants > 0 {
            self.inject[src.0].commit(inject_free, inject_service, inject_grants);
            self.fifo_updates += inject_grants;
            self.fifo_commits += 1;
        }
        for (li, acc) in self.link_acc.iter().enumerate() {
            if acc.grants > 0 {
                self.links
                    .commit(self.scratch[li].0, acc.free, acc.service, acc.grants);
                self.fifo_updates += acc.grants;
                self.fifo_commits += 1;
            }
        }
        SendTiming {
            cpu_release,
            delivered,
            inject_wait: SimDuration::from_nanos(inject_queue_ns),
            link_wait: SimDuration::from_nanos(link_queue_ns),
        }
    }

    /// [`NetState::send`] with a conservative closed-form fast path: when
    /// the injection engine and every link on the route are provably idle
    /// until the payload's wire entry (checked against the next-busy
    /// watermarks), the wormhole completion instant is computed directly
    /// — no per-segment loop — and is bit-identical to what [`NetState::send`]
    /// would produce, including the occupancy watermarks committed back
    /// (so the contention census and any later admission check stay
    /// exact). Any admission failure falls back to [`NetState::send`];
    /// the outcome is recorded in [`NetState::elide_stats`] either way.
    ///
    /// Admission requires the calibrated default [`WireConfig`]: the
    /// closed form models whole-message wormhole routing with contention
    /// and NIC serialization on. Ablation and packetization runs always
    /// fall back.
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range.
    pub fn send_elided(
        &mut self,
        spec: &MachineSpec,
        class: OpClass,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        start: SimTime,
    ) -> SendTiming {
        if self.config != WireConfig::default() {
            self.elide.config_fallback += 1;
            return self.send(spec, class, src, dst, bytes, start);
        }
        if src == dst {
            self.elide.local += 1;
            return self.send(spec, class, src, dst, bytes, start);
        }
        assert!(
            src.0 < self.nodes() && dst.0 < self.nodes(),
            "node out of range"
        );
        let EngineTiming {
            cpu_release,
            engine_ready,
            engine_ns_per_byte,
        } = spec.engine_timing(class, bytes, start);

        // Route lookup through the same per-pair cache as `send`.
        let cache_idx = src.0 * self.nodes() + dst.0;
        if self.route_cache[cache_idx].is_none() {
            self.route_cache[cache_idx] = Some(self.topo.route(src, dst));
        }
        self.scratch.clear();
        let cached = self.route_cache[cache_idx].as_ref().expect("filled above");
        self.scratch.extend_from_slice(cached.links());

        // Admission: every resource on the path must be idle by the time
        // the payload can enter the wire. The header reaches link `i` no
        // earlier than `engine_ready`, so `free_at <= engine_ready` is a
        // conservative (sufficient) idleness bound per link.
        let admitted = self.inject[src.0].free_at() <= engine_ready
            && self
                .scratch
                .iter()
                .all(|link| self.links.free_at(link.0) <= engine_ready);
        if !admitted {
            self.elide.path_busy += 1;
            return self.send(spec, class, src, dst, bytes, start);
        }
        self.elide.admitted += 1;
        self.messages += 1;
        self.bytes += u64::from(bytes);
        if let Some(instr) = &mut self.instr {
            instr.class_msgs[class.index()] += 1;
            instr.class_bytes[class.index()] += u64::from(bytes);
            for link in &self.scratch {
                instr.link_bytes[link.0] += u64::from(bytes);
                instr.link_msgs[link.0] += 1;
            }
        }

        // Closed-form wormhole completion over an idle path. This mirrors
        // `send`'s single-segment arithmetic term for term — the same
        // `from_nanos_f64` roundings, the same integer hop accumulation —
        // so the result is bit-identical, not merely approximate.
        let stream_ns_per_byte = spec.link_ns_per_byte.max(engine_ns_per_byte);
        let chunk_bytes = f64::from(bytes.max(spec.min_packet_bytes));
        let serialize = SimDuration::from_nanos_f64(chunk_bytes * stream_ns_per_byte);
        let hop = SimDuration::from_nanos_f64(spec.hop_ns);

        // NIC: idle, so injection starts at `engine_ready`.
        self.inject[src.0].commit(engine_ready + serialize, serialize, 1);
        self.fifo_updates += 1;
        self.fifo_commits += 1;

        // Header walk: each link is claimed the instant the header
        // arrives and held for its occupancy (capacity-scaled
        // serialization).
        let mut t_hdr = engine_ready;
        for li in 0..self.scratch.len() {
            let capacity = self.link_cap[self.scratch[li].0];
            let occupancy = if capacity > 1.0 {
                SimDuration::from_nanos_f64(chunk_bytes * stream_ns_per_byte / capacity)
            } else {
                serialize
            };
            self.links
                .commit(self.scratch[li].0, t_hdr + occupancy, occupancy, 1);
            self.fifo_updates += 1;
            self.fifo_commits += 1;
            t_hdr += hop;
        }
        SendTiming {
            cpu_release,
            delivered: t_hdr + serialize,
            inject_wait: SimDuration::ZERO,
            link_wait: SimDuration::ZERO,
        }
    }
}

/// Software-cost helpers shared by the executor. These are thin wrappers
/// over the calibrated [`CostTable`](crate::class::CostTable), kept here
/// so the executor has a single vocabulary for all time charges.
impl MachineSpec {
    /// One-time per-rank cost of entering a collective.
    pub fn entry_overhead(&self, class: OpClass) -> SimDuration {
        SimDuration::from_micros_f64(self.costs.get(class).entry_us)
    }

    /// Per-message send-side CPU overhead (descriptor, matching, kernel
    /// trap) — excludes the payload copy, which the network model charges.
    pub fn send_overhead(&self, class: OpClass) -> SimDuration {
        SimDuration::from_micros_f64(self.costs.get(class).o_send_us)
    }

    /// Per-message receive-side cost: fixed overhead plus the receive
    /// copy of `bytes`.
    pub fn recv_overhead(&self, class: OpClass, bytes: u32) -> SimDuration {
        let c = self.costs.get(class);
        SimDuration::from_micros_f64(c.o_recv_us)
            + SimDuration::from_nanos_f64(f64::from(bytes) * c.byte_recv_ns)
    }

    /// Cost of combining `bytes` of operand data in a reduction.
    pub fn compute_cost(&self, bytes: u32) -> SimDuration {
        SimDuration::from_nanos_f64(f64::from(bytes) * self.compute_ns_per_byte)
    }

    /// Send-engine behaviour for one message: who pays the payload copy,
    /// and at what byte rate the payload enters the wire. Classes whose
    /// sends stay on the CPU (`offload = false`) bypass the engine
    /// entirely. Pure in the spec — no occupancy state is consulted — so
    /// the executor's analytic fast path can charge the sender's copy
    /// time before the wire journey is resolved.
    pub fn engine_timing(&self, class: OpClass, bytes: u32, start: SimTime) -> EngineTiming {
        let costs = self.costs.get(class);
        let copy = SimDuration::from_nanos_f64(f64::from(bytes) * costs.byte_send_ns);
        let engine = if costs.offload {
            self.send_engine
        } else {
            SendEngine::Cpu
        };
        let (cpu_release, engine_ready, engine_ns_per_byte) = match engine {
            SendEngine::Cpu => {
                let ready = start + copy;
                (ready, ready, costs.byte_send_ns)
            }
            SendEngine::Coprocessor { ns_per_byte } => {
                // CPU posts a descriptor and is released immediately; the
                // co-processor streams the payload.
                (start, start, ns_per_byte)
            }
            SendEngine::BlockTransfer {
                threshold_bytes,
                setup_us,
                ns_per_byte,
            } => {
                if bytes >= threshold_bytes {
                    let ready = start + SimDuration::from_micros_f64(setup_us);
                    (ready, ready, ns_per_byte)
                } else {
                    let ready = start + copy;
                    (ready, ready, costs.byte_send_ns)
                }
            }
        };
        EngineTiming {
            cpu_release,
            engine_ready,
            engine_ns_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassCosts, CostTable};
    use crate::spec::TopologyKind;

    fn spec(engine: SendEngine) -> MachineSpec {
        MachineSpec {
            name: "test",
            topology: TopologyKind::Mesh2d,
            hop_ns: 100.0,
            link_ns_per_byte: 10.0,
            min_packet_bytes: 1,
            costs: CostTable::uniform(ClassCosts {
                entry_us: 0.0,
                o_send_us: 0.0,
                o_recv_us: 0.0,
                byte_send_ns: 2.0,
                byte_recv_ns: 3.0,
                offload: true,
            }),
            compute_ns_per_byte: 5.0,
            send_engine: engine,
            hw_barrier: None,
            max_nodes: 128,
        }
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn single_hop_timing() {
        let s = spec(SendEngine::Cpu);
        let mut net = NetState::new(&s, 2); // 2x1 mesh: one hop
        let t = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        // copy 100B * 2ns = 200ns; then wire: hop 100 + serialize 1000
        assert_eq!(t.cpu_release.as_nanos(), 200);
        assert_eq!(t.delivered.as_nanos(), 200 + 100 + 1000);
    }

    #[test]
    fn local_send_skips_wire() {
        let s = spec(SendEngine::Cpu);
        let mut net = NetState::new(&s, 4);
        let t = net.send(&s, OpClass::PointToPoint, NodeId(2), NodeId(2), 100, T0);
        assert_eq!(t.delivered.as_nanos(), 200, "copy only");
    }

    #[test]
    fn coprocessor_releases_cpu_immediately() {
        let s = spec(SendEngine::Coprocessor { ns_per_byte: 4.0 });
        let mut net = NetState::new(&s, 2);
        let t = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        assert_eq!(t.cpu_release, T0);
        // Stream rate is the slower of coproc (4) and link (10): 10 ns/B.
        assert_eq!(t.delivered.as_nanos(), 100 + 1000);
    }

    #[test]
    fn slow_coprocessor_limits_stream_rate() {
        let s = spec(SendEngine::Coprocessor { ns_per_byte: 50.0 });
        let mut net = NetState::new(&s, 2);
        let t = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        assert_eq!(t.delivered.as_nanos(), 100 + 5000);
    }

    #[test]
    fn blt_engages_above_threshold() {
        let s = spec(SendEngine::BlockTransfer {
            threshold_bytes: 64,
            setup_us: 1.0,
            ns_per_byte: 1.0,
        });
        let mut net = NetState::new(&s, 2);
        // Below threshold: CPU copy path.
        let small = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 10, T0);
        assert_eq!(small.cpu_release.as_nanos(), 20);
        // Above: setup 1us, CPU released after setup, link-rate stream.
        let mut net = NetState::new(&s, 2);
        let big = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 1000, T0);
        assert_eq!(big.cpu_release.as_nanos(), 1_000);
        assert_eq!(big.delivered.as_nanos(), 1_000 + 100 + 10_000);
    }

    #[test]
    fn nic_serializes_back_to_back_sends() {
        let s = spec(SendEngine::Coprocessor { ns_per_byte: 0.0 });
        let mut net = NetState::new(&s, 4); // 4x1 mesh row... (2x2 actually)
                                            // Two messages from node 0 to distinct neighbors, same instant.
        let a = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        let b = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(2), 100, T0);
        // Serialization time 1000ns each; b injects 1000ns later.
        assert_eq!(b.delivered.as_nanos() - a.delivered.as_nanos(), 1000);
    }

    #[test]
    fn link_contention_serializes_shared_path() {
        let s = spec(SendEngine::Coprocessor { ns_per_byte: 0.0 });
        // 4x1 row: 0->3 and 1->3 share links.
        let mut net = NetState::with_config(
            &s,
            4,
            WireConfig {
                nic_serialization: false,
                ..WireConfig::default()
            },
        );
        let a = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(3), 100, T0);
        let b = net.send(&s, OpClass::PointToPoint, NodeId(1), NodeId(3), 100, T0);
        // b's first link (1->2) is a's second link; b must queue behind a.
        assert!(b.delivered > a.delivered);
        let gap = b.delivered.as_nanos() as i64 - a.delivered.as_nanos() as i64;
        assert!(gap >= 900, "expected near-full serialization, got {gap}");
    }

    #[test]
    fn contention_off_is_faster() {
        let s = spec(SendEngine::Cpu);
        let run = |cfg: WireConfig| {
            let mut net = NetState::with_config(&s, 8, cfg);
            let mut last = SimTime::ZERO;
            for i in 1..8 {
                let t = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(i), 4096, T0);
                last = last.max(t.delivered);
            }
            last
        };
        let with = run(WireConfig::default());
        let without = run(WireConfig {
            link_contention: false,
            nic_serialization: false,
            ..WireConfig::default()
        });
        assert!(without < with, "ablating contention must speed things up");
    }

    #[test]
    fn store_and_forward_exact_per_hop_reserialization() {
        // 2x2 mesh: 0 -> 3 takes exactly two hops. With wormhole off, the
        // full payload re-serializes on every hop; with it on, the
        // serialization is paid once behind the pipelined header.
        let s = spec(SendEngine::Cpu);
        let mut wh = NetState::new(&s, 4);
        let a = wh.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(3), 100, T0);
        // copy 200; header: hop + hop; stream once: 1000.
        assert_eq!(a.delivered.as_nanos(), 200 + 100 + 100 + 1000);
        let mut sf = NetState::with_config(
            &s,
            4,
            WireConfig {
                wormhole: false,
                ..WireConfig::default()
            },
        );
        let b = sf.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(3), 100, T0);
        // copy 200; per hop: hop latency + full 1000 ns re-serialization.
        assert_eq!(b.delivered.as_nanos(), 200 + (100 + 1000) * 2);
    }

    #[test]
    fn store_and_forward_single_hop_matches_wormhole() {
        // One hop has nothing to pipeline across: both models pay one
        // hop latency plus one serialization.
        let s = spec(SendEngine::Cpu);
        let mut wh = NetState::new(&s, 2);
        let mut sf = NetState::with_config(
            &s,
            2,
            WireConfig {
                wormhole: false,
                ..WireConfig::default()
            },
        );
        let a = wh.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        let b = sf.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(b.delivered.as_nanos(), 200 + 100 + 1000);
    }

    #[test]
    fn coalesced_commits_one_per_message_resource() {
        // An 8-segment send over a 1-hop route: 8 inject + 8 link logical
        // updates collapse into one commit per resource, while the link
        // end-state equals the per-segment acquire sequence.
        let s = spec(SendEngine::Cpu);
        let mut net = NetState::with_config(
            &s,
            2,
            WireConfig {
                segment_bytes: Some(1_024),
                ..WireConfig::default()
            },
        );
        net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 8_192, T0);
        let (updates, commits) = net.fifo_update_stats();
        assert_eq!(updates, 16, "8 segments x (inject + 1 link)");
        assert_eq!(commits, 2, "one per (message, resource)");
        // The route's one link saw 8 grants totalling the full payload's
        // serialization time, exactly as 8 acquires would record.
        let loads = net.link_loads();
        assert_eq!(loads.len(), 1);
        let link = net.links.get(loads[0].0 .0).expect("in range");
        assert_eq!(link.grants(), 8);
        assert_eq!(link.busy_time(), SimDuration::from_nanos(8_192 * 10));

        let mut reg = obs::MetricsRegistry::new();
        net.export_metrics(&mut reg);
        assert_eq!(reg.get("net.fifo.updates").unwrap().as_f64(), Some(16.0));
        assert_eq!(reg.get("net.fifo.commits").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn typed_event_helpers_carry_timing() {
        let s = spec(SendEngine::Cpu);
        let mut net = NetState::new(&s, 2);
        let t = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        let (at, ev) = t.delivery_event(0, 1);
        assert_eq!(at, t.delivered);
        assert_eq!(ev, TypedEvent::MessageReady { src: 0, dst: 1 });
        let (at, ev) = t.release_event(0);
        assert_eq!(at, t.cpu_release);
        assert_eq!(ev, TypedEvent::RankResume { rank: 0 });
    }

    #[test]
    fn store_and_forward_slower_than_wormhole() {
        let s = spec(SendEngine::Cpu);
        let mut wh = NetState::new(&s, 16);
        let mut sf = NetState::with_config(
            &s,
            16,
            WireConfig {
                wormhole: false,
                ..WireConfig::default()
            },
        );
        let a = wh.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(15), 4096, T0);
        let b = sf.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(15), 4096, T0);
        assert!(b.delivered > a.delivered);
    }

    #[test]
    fn min_packet_floors_wire_time() {
        let mut s = spec(SendEngine::Cpu);
        s.min_packet_bytes = 32;
        let mut net = NetState::new(&s, 2);
        let t = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 1, T0);
        // serialize = 32B * 10ns = 320ns even for a 1-byte payload
        assert_eq!(t.delivered.as_nanos(), 2 + 100 + 320);
    }

    #[test]
    fn counters_track_traffic() {
        let s = spec(SendEngine::Cpu);
        let mut net = NetState::new(&s, 4);
        net.send(&s, OpClass::Bcast, NodeId(0), NodeId(1), 10, T0);
        net.send(&s, OpClass::Bcast, NodeId(0), NodeId(2), 20, T0);
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.bytes_sent(), 30);
        assert!(net.total_link_busy() > SimDuration::ZERO);
    }

    #[test]
    fn link_loads_sorted_and_consistent() {
        let s = spec(SendEngine::Cpu);
        let mut net = NetState::new(&s, 4);
        net.send(&s, OpClass::Bcast, NodeId(0), NodeId(1), 100, T0);
        net.send(&s, OpClass::Bcast, NodeId(0), NodeId(1), 100, T0);
        net.send(&s, OpClass::Bcast, NodeId(2), NodeId(3), 10, T0);
        let loads = net.link_loads();
        assert!(!loads.is_empty());
        assert!(loads.windows(2).all(|w| w[0].1 >= w[1].1), "sorted");
        let (hot_id, hot_busy) = net.hottest_link().unwrap();
        assert_eq!((hot_id, hot_busy), loads[0]);
        let total: SimDuration = loads.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, net.total_link_busy());
    }

    #[test]
    fn idle_network_has_no_hotspots() {
        let s = spec(SendEngine::Cpu);
        let net = NetState::new(&s, 4);
        assert!(net.hottest_link().is_none());
        assert!(net.link_loads().is_empty());
    }

    #[test]
    fn spec_overhead_helpers() {
        let s = spec(SendEngine::Cpu);
        assert_eq!(s.recv_overhead(OpClass::Bcast, 100).as_nanos(), 300);
        assert_eq!(s.compute_cost(100).as_nanos(), 500);
        assert_eq!(s.send_overhead(OpClass::Bcast), SimDuration::ZERO);
        assert_eq!(s.entry_overhead(OpClass::Bcast), SimDuration::ZERO);
    }

    #[test]
    fn segmentation_preserves_uncontended_timing_roughly() {
        // A single uncontended message takes about the same time whole
        // or packetized (segments pipeline through the NIC).
        let s = spec(SendEngine::Cpu);
        let mut whole = NetState::new(&s, 2);
        let a = whole.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 8_192, T0);
        let mut seg = NetState::with_config(
            &s,
            2,
            WireConfig {
                segment_bytes: Some(1_024),
                ..WireConfig::default()
            },
        );
        let b = seg.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 8_192, T0);
        let ratio = b.delivered.as_nanos() as f64 / a.delivered.as_nanos() as f64;
        assert!((0.95..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn segmentation_interleaves_competing_messages() {
        // Two messages sharing a link: whole-message reservation makes
        // the second wait for the entire first; packetized, they
        // interleave and the *first* message's delivery is delayed while
        // the second finishes earlier than full serialization would.
        let s = spec(SendEngine::Coprocessor { ns_per_byte: 0.0 });
        let run = |cfg: WireConfig| {
            let mut net = NetState::with_config(&s, 4, cfg);
            // for_nodes(4) = 2x2 mesh; 0->3 and 2->3 share the +x link
            // into node 3? Use 0->1 and 0->1 duplicates via nic off:
            let a = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 64_000, T0);
            let b = net.send(&s, OpClass::PointToPoint, NodeId(2), NodeId(3), 64_000, T0);
            // third message crossing both rows: 0 -> 3 shares links
            let c = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(3), 64_000, T0);
            (a.delivered, b.delivered, c.delivered)
        };
        let whole = run(WireConfig {
            nic_serialization: false,
            ..WireConfig::default()
        });
        let segged = run(WireConfig {
            nic_serialization: false,
            segment_bytes: Some(4_096),
            ..WireConfig::default()
        });
        // The contended third message completes no later under
        // segmentation than whole-message reservation.
        assert!(segged.2 <= whole.2, "{segged:?} vs {whole:?}");
    }

    #[test]
    fn instrumentation_counts_links_classes_and_queueing() {
        let s = spec(SendEngine::Coprocessor { ns_per_byte: 0.0 });
        let mut net = NetState::with_config(
            &s,
            4,
            WireConfig {
                nic_serialization: false,
                ..WireConfig::default()
            },
        );
        net.enable_instrumentation();
        // Two messages sharing the 1->3 link: the second must queue.
        net.send(&s, OpClass::Bcast, NodeId(0), NodeId(3), 100, T0);
        net.send(&s, OpClass::Alltoall, NodeId(1), NodeId(3), 50, T0);
        net.send(&s, OpClass::Bcast, NodeId(2), NodeId(2), 10, T0); // local: no wire
        let instr = net.instrumentation().expect("enabled");
        assert_eq!(instr.class_msgs[OpClass::Bcast.index()], 2);
        assert_eq!(instr.class_bytes[OpClass::Bcast.index()], 110);
        assert_eq!(instr.class_msgs[OpClass::Alltoall.index()], 1);
        // Total per-link bytes = sum over messages of payload * hops;
        // the local send contributes nothing.
        let total: u64 = instr.link_bytes.iter().sum();
        let hops01_3 = 2; // 2x2 mesh: 0->3 and 1->3 both take 2 and 1 hops
        let hops1_3 = 1;
        assert_eq!(total, 100 * hops01_3 + 50 * hops1_3);
        assert!(instr.link_queue_ns > 0, "second message queued");

        let mut reg = obs::MetricsRegistry::new();
        net.export_metrics(&mut reg);
        assert_eq!(reg.get("net.messages").unwrap().as_f64(), Some(3.0));
        assert!(reg.get("net.class.bcast.messages").is_some());
        assert!(reg.get("net.queue.link_wait_ns").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn blame_waits_zero_when_uncontended() {
        let s = spec(SendEngine::Cpu);
        let mut net = NetState::new(&s, 4);
        let t = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        assert_eq!(t.inject_wait, SimDuration::ZERO);
        assert_eq!(t.link_wait, SimDuration::ZERO);
        assert!(t.uncontended());
        // Local sends never touch the wire.
        let l = net.send(&s, OpClass::PointToPoint, NodeId(2), NodeId(2), 100, T0);
        assert!(l.uncontended());
    }

    #[test]
    fn blame_records_link_contention_wait() {
        let s = spec(SendEngine::Coprocessor { ns_per_byte: 0.0 });
        let mut net = NetState::with_config(
            &s,
            4,
            WireConfig {
                nic_serialization: false,
                ..WireConfig::default()
            },
        );
        // 0->3 then 1->3: the second message queues behind the first on
        // the shared 1->3 link.
        let a = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(3), 100, T0);
        let b = net.send(&s, OpClass::PointToPoint, NodeId(1), NodeId(3), 100, T0);
        assert!(a.uncontended());
        assert!(b.link_wait > SimDuration::ZERO);
        assert_eq!(b.inject_wait, SimDuration::ZERO);
        assert!(!b.uncontended());
    }

    #[test]
    fn blame_records_inject_wait() {
        let s = spec(SendEngine::Coprocessor { ns_per_byte: 0.0 });
        let mut net = NetState::new(&s, 4);
        // Back-to-back sends from one node to distinct neighbors: the
        // second queues behind the NIC, not behind any link.
        let a = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        let b = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(2), 100, T0);
        assert!(a.uncontended());
        assert!(b.inject_wait > SimDuration::ZERO);
        assert!(!b.uncontended());
        // The waits match the instrumentation accumulators exactly when
        // both are enabled.
        let mut inst = NetState::new(&s, 4);
        inst.enable_instrumentation();
        let a2 = inst.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), 100, T0);
        let b2 = inst.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(2), 100, T0);
        let instr = inst.instrumentation().expect("enabled");
        assert_eq!(
            instr.inject_queue_ns,
            a2.inject_wait.as_nanos() + b2.inject_wait.as_nanos()
        );
        assert_eq!(
            instr.link_queue_ns,
            a2.link_wait.as_nanos() + b2.link_wait.as_nanos()
        );
    }

    #[test]
    fn instrumentation_disabled_by_default() {
        let s = spec(SendEngine::Cpu);
        let mut net = NetState::new(&s, 2);
        net.send(&s, OpClass::Bcast, NodeId(0), NodeId(1), 100, T0);
        assert!(net.instrumentation().is_none());
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn send_out_of_range_panics() {
        let s = spec(SendEngine::Cpu);
        let mut net = NetState::new(&s, 2);
        net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(5), 1, T0);
    }

    /// Drives the same traffic through `send` and `send_elided` on twin
    /// states and asserts bit-identical timings and watermark end-state.
    fn assert_elide_matches(
        s: &MachineSpec,
        p: usize,
        traffic: &[(usize, usize, u32, u64)], // (src, dst, bytes, start_ns)
    ) {
        let mut base = NetState::new(s, p);
        let mut fast = NetState::new(s, p);
        for &(src, dst, bytes, at) in traffic {
            let t0 = SimTime::from_nanos(at);
            let a = base.send(s, OpClass::Alltoall, NodeId(src), NodeId(dst), bytes, t0);
            let b = fast.send_elided(s, OpClass::Alltoall, NodeId(src), NodeId(dst), bytes, t0);
            assert_eq!(a, b, "send {src}->{dst} {bytes}B @{at}ns");
        }
        assert_eq!(base.messages_sent(), fast.messages_sent());
        assert_eq!(base.total_link_busy(), fast.total_link_busy());
        for i in 0..base.inject.len() {
            assert_eq!(
                base.inject[i].free_at(),
                fast.inject[i].free_at(),
                "nic {i}"
            );
        }
        for l in 0..base.links.len() {
            assert_eq!(base.links.free_at(l), fast.links.free_at(l), "link {l}");
        }
    }

    #[test]
    fn elided_send_matches_event_path_when_idle() {
        for engine in [
            SendEngine::Cpu,
            SendEngine::Coprocessor { ns_per_byte: 4.0 },
            SendEngine::BlockTransfer {
                threshold_bytes: 64,
                setup_us: 1.0,
                ns_per_byte: 1.0,
            },
        ] {
            let s = spec(engine);
            // Disjoint paths at spread-out instants: everything admits.
            assert_elide_matches(
                &s,
                16,
                &[
                    (0, 1, 100, 0),
                    (5, 6, 4_096, 0),
                    (2, 14, 32, 50_000),
                    (0, 3, 8, 400_000),
                ],
            );
        }
    }

    #[test]
    fn elided_send_falls_back_on_busy_path_and_matches() {
        let s = spec(SendEngine::Coprocessor { ns_per_byte: 0.0 });
        // Same source at the same instant (NIC busy), then a shared link:
        // the fallback must reproduce the contended timings exactly.
        assert_elide_matches(
            &s,
            4,
            &[(0, 1, 1_000, 0), (0, 2, 1_000, 0), (1, 3, 1_000, 0)],
        );
        let mut fast = NetState::new(&s, 4);
        fast.send_elided(&s, OpClass::Alltoall, NodeId(0), NodeId(1), 1_000, T0);
        fast.send_elided(&s, OpClass::Alltoall, NodeId(0), NodeId(2), 1_000, T0);
        let st = fast.elide_stats();
        assert_eq!(st.admitted, 1);
        assert_eq!(st.path_busy, 1);
    }

    #[test]
    fn elided_send_counts_local_and_config_fallbacks() {
        let s = spec(SendEngine::Cpu);
        let mut fast = NetState::new(&s, 4);
        let local = fast.send_elided(&s, OpClass::Bcast, NodeId(2), NodeId(2), 100, T0);
        assert_eq!(local.delivered.as_nanos(), 200, "copy only");
        assert_eq!(fast.elide_stats().local, 1);

        let mut ablated = NetState::with_config(
            &s,
            4,
            WireConfig {
                wormhole: false,
                ..WireConfig::default()
            },
        );
        let a = ablated.send_elided(&s, OpClass::Bcast, NodeId(0), NodeId(3), 100, T0);
        let mut plain = NetState::with_config(
            &s,
            4,
            WireConfig {
                wormhole: false,
                ..WireConfig::default()
            },
        );
        let b = plain.send(&s, OpClass::Bcast, NodeId(0), NodeId(3), 100, T0);
        assert_eq!(a, b, "config fallback delegates untouched");
        assert_eq!(ablated.elide_stats().config_fallback, 1);
        assert_eq!(ablated.elide_stats().admission_rate(), 0.0);

        let mut reg = obs::MetricsRegistry::new();
        ablated.export_metrics(&mut reg);
        assert_eq!(
            reg.get("net.elide.config_fallback").unwrap().as_f64(),
            Some(1.0)
        );
        // A state that never ran send_elided exports no elide metrics.
        let mut quiet = NetState::new(&s, 2);
        quiet.send(&s, OpClass::Bcast, NodeId(0), NodeId(1), 10, T0);
        let mut reg = obs::MetricsRegistry::new();
        quiet.export_metrics(&mut reg);
        assert!(reg.get("net.elide.admitted").is_none());
    }

    #[test]
    fn engine_timing_matches_send_cpu_release() {
        for engine in [
            SendEngine::Cpu,
            SendEngine::Coprocessor { ns_per_byte: 4.0 },
            SendEngine::BlockTransfer {
                threshold_bytes: 64,
                setup_us: 1.0,
                ns_per_byte: 1.0,
            },
        ] {
            let s = spec(engine);
            for bytes in [10u32, 1_000] {
                let et = s.engine_timing(OpClass::PointToPoint, bytes, T0);
                let mut net = NetState::new(&s, 2);
                let t = net.send(&s, OpClass::PointToPoint, NodeId(0), NodeId(1), bytes, T0);
                assert_eq!(et.cpu_release, t.cpu_release);
            }
        }
    }
}
