//! # netmodel — machine models of the SP2, T3D, and Paragon
//!
//! This crate turns the [`topo`] topologies into *timed* machines:
//!
//! * [`class`] — operation classes and the per-class software cost tables
//!   that stand in for the vendor MPI libraries;
//! * [`spec`] — [`MachineSpec`]: one machine's physics (hop latency, link
//!   bandwidth), software costs, and architectural features (hardware
//!   barrier, send engine);
//! * [`net`] — [`NetState`]: the mutable contention state plus the
//!   pipelined-wormhole wire-time model;
//! * [`machines`] — calibrated constructors [`sp2`], [`t3d`],
//!   [`paragon`] (see DESIGN.md §7 for calibration provenance);
//! * [`builder`] — [`MachineBuilder`] for custom machines (workstation
//!   clusters, what-if variants).
//!
//! # Examples
//!
//! Time a single point-to-point message on the T3D:
//!
//! ```
//! use netmodel::{t3d, NetState, OpClass};
//! use desim::SimTime;
//! use topo::NodeId;
//!
//! let spec = t3d();
//! let mut net = NetState::new(&spec, 8);
//! let t = net.send(&spec, OpClass::PointToPoint,
//!                  NodeId(0), NodeId(5), 1024, SimTime::ZERO);
//! assert!(t.delivered > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod builder;
pub mod class;
pub mod machines;
pub mod net;
pub mod spec;

pub use builder::MachineBuilder;
pub use class::{ClassCosts, CostTable, OpClass};
pub use machines::{paragon, sp2, t3d, MachineId};
pub use net::{ElideStats, EngineTiming, NetInstr, NetState, SendTiming, WireConfig};
pub use spec::{HwBarrierSpec, MachineSpec, SendEngine, TopologyKind};
