//! Machine specifications.
//!
//! A [`MachineSpec`] is a pure description of one multicomputer: its
//! topology family, wire physics, software cost table, and architectural
//! features (hardware barrier, send engine). Instantiating the mutable
//! network state for a particular partition size happens in
//! [`crate::net::NetState`].

use crate::class::{CostTable, OpClass};
use topo::{Crossbar, FatTree, Hypercube, Mesh2d, Omega, Topology, Torus3d};

/// Which interconnect family a machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// 3-D bidirectional torus (Cray T3D).
    Torus3d,
    /// 2-D mesh with XY routing (Intel Paragon).
    Mesh2d,
    /// Multistage Omega network with the given switch radix (IBM SP2).
    Omega {
        /// Switch radix (ports per direction).
        radix: usize,
    },
    /// Ideal contention-free crossbar (ablation baseline, not a paper
    /// machine).
    Crossbar,
    /// Binary hypercube (what-if topology, not a paper machine).
    Hypercube,
    /// K-ary fat tree with up/down routing (alternative SP2 abstraction).
    FatTree {
        /// Switch radix.
        radix: usize,
    },
}

impl TopologyKind {
    /// Builds the concrete topology for a `p`-node partition.
    pub fn build(self, p: usize) -> Box<dyn Topology> {
        match self {
            TopologyKind::Torus3d => Box::new(Torus3d::for_nodes(p)),
            TopologyKind::Mesh2d => Box::new(Mesh2d::for_nodes(p)),
            TopologyKind::Omega { radix } => Box::new(Omega::new(p, radix)),
            TopologyKind::Crossbar => Box::new(Crossbar::new(p)),
            TopologyKind::Hypercube => Box::new(Hypercube::for_nodes(p)),
            TopologyKind::FatTree { radix } => Box::new(FatTree::new(p, radix)),
        }
    }
}

/// How the send path moves payload bytes out of the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendEngine {
    /// The CPU itself copies and injects; it stays busy for the whole
    /// per-byte cost (IBM SP2).
    Cpu,
    /// A dedicated message co-processor streams the payload; the CPU is
    /// released after posting the descriptor (Intel Paragon's i860 MP).
    Coprocessor {
        /// Co-processor streaming cost, nanoseconds per byte.
        ns_per_byte: f64,
    },
    /// CPU copies small messages; payloads at or above `threshold_bytes`
    /// are handed to the block-transfer engine (Cray T3D BLT).
    BlockTransfer {
        /// Minimum payload size routed through the BLT.
        threshold_bytes: u32,
        /// One-time BLT descriptor setup, microseconds.
        setup_us: f64,
        /// BLT streaming cost, nanoseconds per byte.
        ns_per_byte: f64,
    },
}

/// A hardware barrier network (the T3D's hardwired AND tree).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwBarrierSpec {
    /// Fixed release latency once the last rank arrives, microseconds.
    pub base_us: f64,
    /// Additional latency per log2(p) level of the AND tree, microseconds.
    pub per_level_us: f64,
}

impl HwBarrierSpec {
    /// Release latency for a `p`-rank barrier, microseconds.
    pub fn latency_us(&self, p: usize) -> f64 {
        let levels = (p.max(1) as f64).log2();
        self.base_us + self.per_level_us * levels
    }
}

/// A complete description of one multicomputer.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable machine name ("IBM SP2", …).
    pub name: &'static str,
    /// Interconnect family.
    pub topology: TopologyKind,
    /// Per-hop switch/router latency, nanoseconds.
    pub hop_ns: f64,
    /// Link streaming cost, nanoseconds per byte (inverse link bandwidth).
    pub link_ns_per_byte: f64,
    /// Smallest unit that occupies the wire (packet/flit floor), bytes.
    pub min_packet_bytes: u32,
    /// Per-class software costs (calibrated; see DESIGN.md §7).
    pub costs: CostTable,
    /// Reduction arithmetic cost, nanoseconds per byte of operand.
    pub compute_ns_per_byte: f64,
    /// How payload leaves the node.
    pub send_engine: SendEngine,
    /// Hardware barrier support, if any.
    pub hw_barrier: Option<HwBarrierSpec>,
    /// Largest partition the paper measured on this machine.
    pub max_nodes: usize,
}

impl MachineSpec {
    /// Validates physical sanity of all parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.hop_ns < 0.0 || !self.hop_ns.is_finite() {
            return Err(format!("hop_ns invalid: {}", self.hop_ns));
        }
        if self.link_ns_per_byte <= 0.0 || !self.link_ns_per_byte.is_finite() {
            return Err(format!(
                "link_ns_per_byte invalid: {}",
                self.link_ns_per_byte
            ));
        }
        if self.min_packet_bytes == 0 {
            return Err("min_packet_bytes must be positive".into());
        }
        if self.compute_ns_per_byte < 0.0 {
            return Err("compute_ns_per_byte must be non-negative".into());
        }
        if self.max_nodes == 0 {
            return Err("max_nodes must be positive".into());
        }
        match self.send_engine {
            SendEngine::Cpu => {}
            SendEngine::Coprocessor { ns_per_byte } => {
                if ns_per_byte < 0.0 {
                    return Err("coprocessor ns_per_byte must be non-negative".into());
                }
            }
            SendEngine::BlockTransfer {
                threshold_bytes,
                setup_us,
                ns_per_byte,
            } => {
                if threshold_bytes == 0 {
                    return Err("BLT threshold must be positive".into());
                }
                if setup_us < 0.0 || ns_per_byte < 0.0 {
                    return Err("BLT costs must be non-negative".into());
                }
            }
        }
        self.costs.validate()
    }

    /// Link bandwidth in MB/s (the number the paper quotes).
    pub fn link_bandwidth_mb_s(&self) -> f64 {
        1_000.0 / self.link_ns_per_byte
    }

    /// Whether `class` on this machine bypasses the network software path
    /// entirely (currently: barrier on machines with a hardware barrier).
    pub fn uses_hw_barrier(&self, class: OpClass) -> bool {
        class == OpClass::Barrier && self.hw_barrier.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassCosts, CostTable};

    fn dummy() -> MachineSpec {
        MachineSpec {
            name: "dummy",
            topology: TopologyKind::Mesh2d,
            hop_ns: 40.0,
            link_ns_per_byte: 5.0,
            min_packet_bytes: 32,
            costs: CostTable::uniform(ClassCosts::FREE),
            compute_ns_per_byte: 10.0,
            send_engine: SendEngine::Cpu,
            hw_barrier: None,
            max_nodes: 128,
        }
    }

    #[test]
    fn valid_spec_passes() {
        assert!(dummy().validate().is_ok());
    }

    #[test]
    fn invalid_fields_rejected() {
        let mut s = dummy();
        s.link_ns_per_byte = 0.0;
        assert!(s.validate().is_err());

        let mut s = dummy();
        s.min_packet_bytes = 0;
        assert!(s.validate().is_err());

        let mut s = dummy();
        s.send_engine = SendEngine::BlockTransfer {
            threshold_bytes: 0,
            setup_us: 1.0,
            ns_per_byte: 1.0,
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn bandwidth_conversion() {
        let mut s = dummy();
        s.link_ns_per_byte = 25.0; // SP2: 40 MB/s
        assert!((s.link_bandwidth_mb_s() - 40.0).abs() < 1e-9);
        s.link_ns_per_byte = 1_000.0 / 300.0; // T3D: 300 MB/s
        assert!((s.link_bandwidth_mb_s() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn topology_kinds_build() {
        assert_eq!(TopologyKind::Torus3d.build(64).nodes(), 64);
        assert_eq!(TopologyKind::Mesh2d.build(128).nodes(), 128);
        assert_eq!(TopologyKind::Omega { radix: 4 }.build(16).nodes(), 16);
        assert_eq!(TopologyKind::Crossbar.build(32).nodes(), 32);
        assert_eq!(TopologyKind::Hypercube.build(64).nodes(), 64);
        assert_eq!(TopologyKind::FatTree { radix: 4 }.build(48).nodes(), 48);
    }

    #[test]
    fn hw_barrier_latency() {
        let hb = HwBarrierSpec {
            base_us: 3.0,
            per_level_us: 0.011,
        };
        assert!((hb.latency_us(2) - 3.011).abs() < 1e-9);
        assert!((hb.latency_us(64) - (3.0 + 0.011 * 6.0)).abs() < 1e-9);
        assert!((hb.latency_us(1) - 3.0).abs() < 1e-9, "log2(1)=0");
    }

    #[test]
    fn hw_barrier_flag_only_for_barrier() {
        let mut s = dummy();
        s.hw_barrier = Some(HwBarrierSpec {
            base_us: 3.0,
            per_level_us: 0.0,
        });
        assert!(s.uses_hw_barrier(OpClass::Barrier));
        assert!(!s.uses_hw_barrier(OpClass::Bcast));
        assert!(!dummy().uses_hw_barrier(OpClass::Barrier));
    }
}
