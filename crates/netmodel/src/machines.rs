//! Calibrated machine models for the three multicomputers of the study.
//!
//! # Where the numbers come from
//!
//! *Physical* constants are taken directly from the paper (§4): per-hop
//! network latency of 125 ns (SP2), 20 ns (T3D), 40 ns (Paragon), and
//! link bandwidths of 40, 300, and 175 MB/s respectively.
//!
//! *Software* constants (per-message overheads, per-byte copy costs)
//! encapsulate the vendor MPI library code paths we cannot run — MPICH
//! over MPL on the SP2, CRI/EPCC MPI on the T3D, MPICH over NX on the
//! Paragon. They were calibrated so that the full simulation pipeline
//! (collective schedules → discrete-event execution → the paper's
//! measurement methodology → least-squares fitting) reproduces the
//! shapes and magnitudes of the paper's Table 3; see the
//! `bench --bin calibrate` report and `EXPERIMENTS.md`. Starting points
//! were derived analytically from Table 3 coefficients, e.g. the SP2's
//! 5.8 µs/message scatter startup slope is charged as the root's
//! per-send overhead.
//!
//! Architectural features follow the paper's narrative (§4, §5): the
//! T3D's hardwired barrier (≈3 µs regardless of size) and block-transfer
//! engine for long messages; the Paragon's dedicated i860 message
//! co-processor; the SP2's CPU-driven messaging.

use crate::class::{ClassCosts, CostTable, OpClass};
use crate::spec::{HwBarrierSpec, MachineSpec, SendEngine, TopologyKind};

/// Identifies one of the three machines of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MachineId {
    /// IBM SP2 (Maui High-Performance Computing Center configuration).
    Sp2,
    /// Cray T3D (Cray Eagan Center configuration).
    T3d,
    /// Intel Paragon (San Diego Supercomputer Center configuration).
    Paragon,
}

impl MachineId {
    /// All three machines, in the paper's order.
    pub const ALL: [MachineId; 3] = [MachineId::Sp2, MachineId::T3d, MachineId::Paragon];

    /// Builds the calibrated spec for this machine.
    pub fn spec(self) -> MachineSpec {
        match self {
            MachineId::Sp2 => sp2(),
            MachineId::T3d => t3d(),
            MachineId::Paragon => paragon(),
        }
    }

    /// Paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            MachineId::Sp2 => "SP2",
            MachineId::T3d => "T3D",
            MachineId::Paragon => "Paragon",
        }
    }

    /// Largest partition measured in the paper (T3D allocation was capped
    /// at 64 nodes; SP2 and Paragon went to 128).
    pub fn max_nodes(self) -> usize {
        match self {
            MachineId::T3d => 64,
            _ => 128,
        }
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn costs(
    entry_us: f64,
    o_send_us: f64,
    o_recv_us: f64,
    byte_send_ns: f64,
    byte_recv_ns: f64,
) -> ClassCosts {
    ClassCosts {
        entry_us,
        o_send_us,
        o_recv_us,
        byte_send_ns,
        byte_recv_ns,
        offload: true,
    }
}

/// Costs for a class whose per-block copies stay on the CPU even when the
/// machine has an offload engine (non-contiguous buffer handling in the
/// vendor library).
fn costs_cpu(
    entry_us: f64,
    o_send_us: f64,
    o_recv_us: f64,
    byte_send_ns: f64,
    byte_recv_ns: f64,
) -> ClassCosts {
    ClassCosts {
        offload: false,
        ..costs(entry_us, o_send_us, o_recv_us, byte_send_ns, byte_recv_ns)
    }
}

/// The IBM SP2: Omega-network multistage switch, CPU-driven messaging
/// (no co-processor, no hardware barrier), 40 MB/s links.
pub fn sp2() -> MachineSpec {
    let table = CostTable::uniform(costs(0.0, 20.0, 20.0, 2.0, 2.0))
        //                          entry  o_send o_recv  bs   br
        .with(OpClass::Barrier, costs(0.0, 52.0, 52.0, 0.0, 0.0))
        .with(OpClass::Bcast, costs(30.0, 50.0, 45.0, 4.0, 4.0))
        .with(OpClass::Gather, costs(128.0, 2.0, 3.7, 0.0, 0.0))
        .with(OpClass::Scatter, costs(77.0, 5.8, 3.0, 30.0, 7.0))
        .with(OpClass::Reduce, costs(26.0, 52.0, 52.0, 2.0, 16.0))
        .with(OpClass::Scan, costs(0.0, 48.0, 48.0, 2.0, 2.0))
        .with(OpClass::Alltoall, costs(90.0, 12.0, 12.0, 23.0, 23.0));
    MachineSpec {
        name: "IBM SP2",
        topology: TopologyKind::Omega { radix: 4 },
        hop_ns: 125.0,
        link_ns_per_byte: 25.0, // 40 MB/s
        min_packet_bytes: 64,
        costs: table,
        compute_ns_per_byte: 12.0, // POWER2 reduction arithmetic
        send_engine: SendEngine::Cpu,
        hw_barrier: None,
        max_nodes: 128,
    }
}

/// The Cray T3D: 3-D torus, hardwired barrier tree, block-transfer engine
/// for long messages, 300 MB/s links, 20 ns hops.
pub fn t3d() -> MachineSpec {
    let table = CostTable::uniform(costs(0.0, 10.0, 10.0, 2.0, 2.0))
        .with(OpClass::Barrier, costs(0.0, 10.0, 10.0, 0.0, 0.0)) // barrier HW ignores these; generic-policy ablation uses them
        .with(OpClass::Bcast, costs_cpu(12.0, 21.0, 19.0, 9.0, 12.0))
        .with(OpClass::Gather, costs(30.0, 2.0, 5.3, 0.5, 4.7))
        .with(OpClass::Scatter, costs_cpu(67.0, 4.3, 2.0, 11.0, 1.5))
        .with(OpClass::Reduce, costs(49.0, 30.0, 29.0, 2.0, 50.0))
        .with(OpClass::Scan, costs(41.0, 14.0, 13.0, 2.0, 40.0))
        .with(OpClass::Alltoall, costs(8.6, 13.0, 12.0, 10.0, 30.0));
    MachineSpec {
        name: "Cray T3D",
        topology: TopologyKind::Torus3d,
        hop_ns: 20.0,
        link_ns_per_byte: 1_000.0 / 300.0, // 300 MB/s
        min_packet_bytes: 32,
        costs: table,
        compute_ns_per_byte: 15.0, // Alpha 21064 reduction arithmetic
        send_engine: SendEngine::BlockTransfer {
            threshold_bytes: 1024,
            setup_us: 2.0,
            ns_per_byte: 0.5,
        },
        hw_barrier: Some(HwBarrierSpec {
            base_us: 3.0,
            per_level_us: 0.011,
        }),
        max_nodes: 64,
    }
}

/// The Intel Paragon: 2-D mesh, i860 message co-processor per node,
/// NX kernel messaging (long per-message overheads for the many-to-many
/// operations), 175 MB/s links.
pub fn paragon() -> MachineSpec {
    let table = CostTable::uniform(costs(0.0, 30.0, 30.0, 0.0, 4.0))
        .with(OpClass::Barrier, costs(0.0, 73.0, 72.0, 0.0, 0.0))
        .with(OpClass::Bcast, costs_cpu(15.0, 48.0, 46.0, 10.0, 20.0))
        .with(OpClass::Gather, costs(15.0, 3.0, 48.0, 0.0, 9.0))
        .with(OpClass::Scatter, costs(78.0, 18.0, 5.0, 0.0, 0.5))
        .with(OpClass::Reduce, costs(3.6, 75.0, 74.0, 0.0, 90.0))
        .with(OpClass::Scan, costs(73.0, 5.0, 5.0, 0.0, 11.0))
        .with(OpClass::Alltoall, costs(82.0, 48.0, 47.0, 25.0, 60.0));
    MachineSpec {
        name: "Intel Paragon",
        topology: TopologyKind::Mesh2d,
        hop_ns: 40.0,
        link_ns_per_byte: 1_000.0 / 175.0, // 175 MB/s
        min_packet_bytes: 32,
        costs: table,
        compute_ns_per_byte: 60.0, // reduction arithmetic via NX buffers
        send_engine: SendEngine::Coprocessor { ns_per_byte: 5.0 },
        hw_barrier: None,
        max_nodes: 128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for id in MachineId::ALL {
            let spec = id.spec();
            spec.validate().unwrap_or_else(|e| panic!("{id}: {e}"));
        }
    }

    #[test]
    fn paper_link_bandwidths() {
        assert!((sp2().link_bandwidth_mb_s() - 40.0).abs() < 0.5);
        assert!((t3d().link_bandwidth_mb_s() - 300.0).abs() < 0.5);
        assert!((paragon().link_bandwidth_mb_s() - 175.0).abs() < 0.5);
    }

    #[test]
    fn paper_hop_latencies() {
        assert_eq!(sp2().hop_ns, 125.0);
        assert_eq!(t3d().hop_ns, 20.0);
        assert_eq!(paragon().hop_ns, 40.0);
    }

    #[test]
    fn only_t3d_has_hw_barrier() {
        assert!(t3d().hw_barrier.is_some());
        assert!(sp2().hw_barrier.is_none());
        assert!(paragon().hw_barrier.is_none());
        // And it releases in ~3 us as the paper reports.
        let hb = t3d().hw_barrier.unwrap();
        assert!(hb.latency_us(64) < 4.0);
    }

    #[test]
    fn engines_match_architecture() {
        assert_eq!(sp2().send_engine, SendEngine::Cpu);
        assert!(matches!(
            t3d().send_engine,
            SendEngine::BlockTransfer { .. }
        ));
        assert!(matches!(
            paragon().send_engine,
            SendEngine::Coprocessor { .. }
        ));
    }

    #[test]
    fn node_limits_match_paper() {
        assert_eq!(MachineId::T3d.max_nodes(), 64);
        assert_eq!(MachineId::Sp2.max_nodes(), 128);
        assert_eq!(MachineId::Paragon.max_nodes(), 128);
    }

    #[test]
    fn paragon_nx_overheads_dominate() {
        // §7: Paragon's per-message costs for alltoall/gather are several
        // times those of the other machines.
        let pg = paragon();
        let sp = sp2();
        let t3 = t3d();
        for class in [OpClass::Alltoall, OpClass::Gather] {
            let p = pg.costs.get(class).o_send_us + pg.costs.get(class).o_recv_us;
            let s = sp.costs.get(class).o_send_us + sp.costs.get(class).o_recv_us;
            let t = t3.costs.get(class).o_send_us + t3.costs.get(class).o_recv_us;
            assert!(p > 1.8 * s, "{class}: paragon {p} vs sp2 {s}");
            assert!(p > 1.8 * t, "{class}: paragon {p} vs t3d {t}");
        }
    }

    #[test]
    fn display_and_ids() {
        assert_eq!(MachineId::Sp2.to_string(), "SP2");
        assert_eq!(MachineId::ALL.len(), 3);
    }
}
