//! Builder for custom machine specifications.
//!
//! The three calibrated machines cover the paper; [`MachineBuilder`]
//! lets downstream users model other systems — workstation clusters,
//! hypothetical upgrades, what-if variants — without hand-assembling a
//! [`MachineSpec`]. Unset knobs default to a plain CPU-driven machine on
//! an ideal crossbar.

use crate::class::{ClassCosts, CostTable, OpClass};
use crate::spec::{HwBarrierSpec, MachineSpec, SendEngine, TopologyKind};

/// A non-consuming builder for [`MachineSpec`].
///
/// # Examples
///
/// ```
/// use netmodel::MachineBuilder;
///
/// // A 10-node Ethernet workstation cluster, roughly 1995 vintage.
/// let spec = MachineBuilder::new("NOW cluster")
///     .crossbar()
///     .link_bandwidth_mb_s(1.25)     // 10 Mb/s shared Ethernet
///     .hop_ns(5_000.0)
///     .uniform_overheads_us(400.0, 400.0) // TCP/IP stack
///     .uniform_byte_costs_ns(50.0, 50.0)
///     .max_nodes(32)
///     .build()
///     .expect("valid spec");
/// assert_eq!(spec.link_bandwidth_mb_s(), 1.25);
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    name: &'static str,
    topology: TopologyKind,
    hop_ns: f64,
    link_ns_per_byte: f64,
    min_packet_bytes: u32,
    costs: CostTable,
    compute_ns_per_byte: f64,
    send_engine: SendEngine,
    hw_barrier: Option<HwBarrierSpec>,
    max_nodes: usize,
}

impl MachineBuilder {
    /// Starts a builder with neutral defaults: ideal crossbar, 100 MB/s
    /// links, 1 µs hops, zero software costs, CPU send engine, 128-node
    /// maximum.
    pub fn new(name: &'static str) -> Self {
        MachineBuilder {
            name,
            topology: TopologyKind::Crossbar,
            hop_ns: 1_000.0,
            link_ns_per_byte: 10.0,
            min_packet_bytes: 32,
            costs: CostTable::uniform(ClassCosts::FREE),
            compute_ns_per_byte: 10.0,
            send_engine: SendEngine::Cpu,
            hw_barrier: None,
            max_nodes: 128,
        }
    }

    /// Uses a 3-D torus interconnect.
    pub fn torus3d(&mut self) -> &mut Self {
        self.topology = TopologyKind::Torus3d;
        self
    }

    /// Uses a 2-D mesh interconnect.
    pub fn mesh2d(&mut self) -> &mut Self {
        self.topology = TopologyKind::Mesh2d;
        self
    }

    /// Uses a multistage Omega network with the given switch radix.
    pub fn omega(&mut self, radix: usize) -> &mut Self {
        self.topology = TopologyKind::Omega { radix };
        self
    }

    /// Uses an ideal crossbar (default).
    pub fn crossbar(&mut self) -> &mut Self {
        self.topology = TopologyKind::Crossbar;
        self
    }

    /// Uses a binary hypercube.
    pub fn hypercube(&mut self) -> &mut Self {
        self.topology = TopologyKind::Hypercube;
        self
    }

    /// Sets the per-hop router latency in nanoseconds.
    pub fn hop_ns(&mut self, ns: f64) -> &mut Self {
        self.hop_ns = ns;
        self
    }

    /// Sets the link bandwidth in MB/s.
    pub fn link_bandwidth_mb_s(&mut self, mb_s: f64) -> &mut Self {
        self.link_ns_per_byte = if mb_s > 0.0 { 1_000.0 / mb_s } else { -1.0 };
        self
    }

    /// Sets the smallest wire-occupying unit in bytes.
    pub fn min_packet_bytes(&mut self, bytes: u32) -> &mut Self {
        self.min_packet_bytes = bytes;
        self
    }

    /// Sets identical per-message overheads (send, receive; µs) for all
    /// operation classes.
    pub fn uniform_overheads_us(&mut self, o_send: f64, o_recv: f64) -> &mut Self {
        self.for_each_class(|c| {
            c.o_send_us = o_send;
            c.o_recv_us = o_recv;
        });
        self
    }

    /// Sets identical per-byte software costs (send, receive; ns/B) for
    /// all operation classes.
    pub fn uniform_byte_costs_ns(&mut self, send: f64, recv: f64) -> &mut Self {
        self.for_each_class(|c| {
            c.byte_send_ns = send;
            c.byte_recv_ns = recv;
        });
        self
    }

    /// Overrides the costs of one operation class.
    pub fn class_costs(&mut self, class: OpClass, costs: ClassCosts) -> &mut Self {
        self.costs = self.costs.clone().with(class, costs);
        self
    }

    /// Sets the reduction arithmetic cost in ns per operand byte.
    pub fn compute_ns_per_byte(&mut self, ns: f64) -> &mut Self {
        self.compute_ns_per_byte = ns;
        self
    }

    /// Sets the send engine.
    pub fn send_engine(&mut self, engine: SendEngine) -> &mut Self {
        self.send_engine = engine;
        self
    }

    /// Adds a hardware barrier network.
    pub fn hw_barrier(&mut self, base_us: f64, per_level_us: f64) -> &mut Self {
        self.hw_barrier = Some(HwBarrierSpec {
            base_us,
            per_level_us,
        });
        self
    }

    /// Sets the largest supported partition.
    pub fn max_nodes(&mut self, n: usize) -> &mut Self {
        self.max_nodes = n;
        self
    }

    fn for_each_class(&mut self, mut f: impl FnMut(&mut ClassCosts)) {
        let classes = OpClass::COLLECTIVES
            .into_iter()
            .chain([OpClass::PointToPoint]);
        for class in classes {
            let mut c = *self.costs.get(class);
            f(&mut c);
            self.costs = self.costs.clone().with(class, c);
        }
    }

    /// Builds and validates the spec.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for non-physical parameter
    /// combinations.
    pub fn build(&self) -> Result<MachineSpec, String> {
        let spec = MachineSpec {
            name: self.name,
            topology: self.topology,
            hop_ns: self.hop_ns,
            link_ns_per_byte: self.link_ns_per_byte,
            min_packet_bytes: self.min_packet_bytes,
            costs: self.costs.clone(),
            compute_ns_per_byte: self.compute_ns_per_byte,
            send_engine: self.send_engine,
            hw_barrier: self.hw_barrier,
            max_nodes: self.max_nodes,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let spec = MachineBuilder::new("default").build().unwrap();
        assert_eq!(spec.topology, TopologyKind::Crossbar);
        assert_eq!(spec.link_bandwidth_mb_s(), 100.0);
        assert!(spec.hw_barrier.is_none());
    }

    #[test]
    fn chained_configuration() {
        let spec = MachineBuilder::new("custom")
            .torus3d()
            .hop_ns(20.0)
            .link_bandwidth_mb_s(300.0)
            .uniform_overheads_us(10.0, 12.0)
            .uniform_byte_costs_ns(3.0, 4.0)
            .compute_ns_per_byte(15.0)
            .hw_barrier(3.0, 0.011)
            .max_nodes(64)
            .build()
            .unwrap();
        assert_eq!(spec.topology, TopologyKind::Torus3d);
        assert!((spec.link_bandwidth_mb_s() - 300.0).abs() < 1e-9);
        assert_eq!(spec.costs.get(OpClass::Scan).o_send_us, 10.0);
        assert_eq!(spec.costs.get(OpClass::Gather).byte_recv_ns, 4.0);
        assert!(spec.hw_barrier.is_some());
        assert_eq!(spec.max_nodes, 64);
    }

    #[test]
    fn per_class_override_after_uniform() {
        let spec = MachineBuilder::new("x")
            .uniform_overheads_us(10.0, 10.0)
            .class_costs(
                OpClass::Alltoall,
                ClassCosts {
                    o_send_us: 99.0,
                    ..ClassCosts::FREE
                },
            )
            .build()
            .unwrap();
        assert_eq!(spec.costs.get(OpClass::Alltoall).o_send_us, 99.0);
        assert_eq!(spec.costs.get(OpClass::Bcast).o_send_us, 10.0);
    }

    #[test]
    fn invalid_configuration_rejected() {
        let err = MachineBuilder::new("bad")
            .link_bandwidth_mb_s(0.0)
            .build()
            .unwrap_err();
        assert!(err.contains("link_ns_per_byte"), "{err}");
        assert!(MachineBuilder::new("bad2").max_nodes(0).build().is_err());
    }
}
