//! Operation classes and per-class software cost tables.
//!
//! The paper attributes large per-machine differences to the *software*
//! path of each collective in the vendor MPI library (e.g. the Paragon's
//! NX kernel messaging makes its alltoall/gather startup 4–15× worse than
//! the other machines, §7). We therefore keep a per-`(machine, class)`
//! table of software overheads, calibrated against the paper's Table 3;
//! the hardware path (links, hops, contention, DMA engines) is simulated
//! physically in [`crate::net`].

use core::fmt;

/// The class of communication operation a message belongs to.
///
/// MPI implementations of the era ran different kernel code paths per
/// collective, so software overheads are class-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Barrier synchronization.
    Barrier,
    /// One-to-all broadcast.
    Bcast,
    /// All-to-one gather.
    Gather,
    /// One-to-all scatter (distinct payload per destination).
    Scatter,
    /// All-to-one reduction.
    Reduce,
    /// Parallel prefix (MPI_Scan).
    Scan,
    /// Total exchange (MPI_Alltoall).
    Alltoall,
    /// Plain point-to-point traffic.
    PointToPoint,
}

impl OpClass {
    /// All collective classes, in the paper's presentation order.
    pub const COLLECTIVES: [OpClass; 7] = [
        OpClass::Bcast,
        OpClass::Alltoall,
        OpClass::Scatter,
        OpClass::Gather,
        OpClass::Scan,
        OpClass::Reduce,
        OpClass::Barrier,
    ];

    /// Every class, including point-to-point — the index space of
    /// [`OpClass::index`], for dense per-class counter arrays.
    pub const ALL: [OpClass; 8] = [
        OpClass::Barrier,
        OpClass::Bcast,
        OpClass::Gather,
        OpClass::Scatter,
        OpClass::Reduce,
        OpClass::Scan,
        OpClass::Alltoall,
        OpClass::PointToPoint,
    ];

    /// A dense index in `[0, OpClass::ALL.len())`, stable across runs —
    /// used for per-class counters without hashing.
    pub const fn index(self) -> usize {
        match self {
            OpClass::Barrier => 0,
            OpClass::Bcast => 1,
            OpClass::Gather => 2,
            OpClass::Scatter => 3,
            OpClass::Reduce => 4,
            OpClass::Scan => 5,
            OpClass::Alltoall => 6,
            OpClass::PointToPoint => 7,
        }
    }

    /// Short lowercase key for metric and CLI names.
    pub fn key(self) -> &'static str {
        match self {
            OpClass::Barrier => "barrier",
            OpClass::Bcast => "bcast",
            OpClass::Gather => "gather",
            OpClass::Scatter => "scatter",
            OpClass::Reduce => "reduce",
            OpClass::Scan => "scan",
            OpClass::Alltoall => "alltoall",
            OpClass::PointToPoint => "p2p",
        }
    }

    /// Inverse of [`OpClass::key`] — parses the short key back to the
    /// class. Run-record serialization stores classes by key, so
    /// consumers of `*.record.json` round-trip through this.
    pub fn from_key(key: &str) -> Option<OpClass> {
        OpClass::ALL.into_iter().find(|op| op.key() == key)
    }

    /// The paper's name for the operation.
    pub fn paper_name(self) -> &'static str {
        match self {
            OpClass::Barrier => "Barrier",
            OpClass::Bcast => "Broadcast",
            OpClass::Gather => "Gather",
            OpClass::Scatter => "Scatter",
            OpClass::Reduce => "Reduce",
            OpClass::Scan => "Scan",
            OpClass::Alltoall => "Total Exchange",
            OpClass::PointToPoint => "Point-to-Point",
        }
    }

    /// Aggregated message volume `f(m, p)` of the operation (§3): the sum
    /// of all bytes moved between node pairs when each pairwise message is
    /// `m` bytes and `p` nodes participate.
    ///
    /// `m(p-1)` for the one-to-all / all-to-one operations and scan;
    /// `m·p(p-1)` for total exchange; 0 for barrier and point-to-point
    /// (the paper leaves them out of the bandwidth metric).
    pub fn aggregated_bytes(self, m: u64, p: u64) -> u64 {
        match self {
            OpClass::Bcast
            | OpClass::Gather
            | OpClass::Scatter
            | OpClass::Reduce
            | OpClass::Scan => m * (p.saturating_sub(1)),
            OpClass::Alltoall => m * p * (p.saturating_sub(1)),
            OpClass::Barrier | OpClass::PointToPoint => 0,
        }
    }

    /// The MPI function name (Table 1).
    pub fn mpi_function(self) -> &'static str {
        match self {
            OpClass::Barrier => "MPI_Barrier",
            OpClass::Bcast => "MPI_Bcast",
            OpClass::Gather => "MPI_Gather",
            OpClass::Scatter => "MPI_Scatter",
            OpClass::Reduce => "MPI_Reduce",
            OpClass::Scan => "MPI_Scan",
            OpClass::Alltoall => "MPI_Alltoall",
            OpClass::PointToPoint => "MPI_Send/MPI_Recv",
        }
    }

    /// The paper's Table 1 function description.
    pub fn table1_description(self) -> &'static str {
        match self {
            OpClass::Barrier => "Blocks until all processes have reached this routine.",
            OpClass::Bcast => "Broadcasts a message to all processes in the same group.",
            OpClass::Gather => "Gathers distinct messages from each task in the group.",
            OpClass::Scatter => "Sends data from one task to all other tasks in a group.",
            OpClass::Reduce => "Reduces values on all processes to a single value.",
            OpClass::Scan => "Computes a parallel prefix over the collection of processes.",
            OpClass::Alltoall => "Sends data from all to all processes.",
            OpClass::PointToPoint => "Standard blocking point-to-point transfer.",
        }
    }

    /// Whether the paper observed O(log p) startup growth for this class
    /// (tree-structured) rather than O(p) (root- or round-serialized).
    pub fn startup_is_logarithmic(self) -> bool {
        matches!(
            self,
            OpClass::Barrier | OpClass::Bcast | OpClass::Reduce | OpClass::Scan
        )
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Software costs of one operation class on one machine.
///
/// All values are *software path* costs; wire time, hop latency, link
/// contention, and DMA engine occupancy are simulated separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassCosts {
    /// One-time cost per rank for entering the collective (argument
    /// checking, buffer setup), microseconds.
    pub entry_us: f64,
    /// Per-message send-side CPU overhead, microseconds.
    pub o_send_us: f64,
    /// Per-message receive-side CPU overhead, microseconds.
    pub o_recv_us: f64,
    /// Send-path software copy cost, nanoseconds per byte.
    pub byte_send_ns: f64,
    /// Receive-path software copy cost, nanoseconds per byte.
    pub byte_recv_ns: f64,
    /// Whether this class's sends may use the machine's offload engine
    /// (co-processor / block-transfer engine). Vendor libraries did not
    /// route every collective through DMA — e.g. scatter's per-block
    /// copies stayed on the CPU.
    pub offload: bool,
}

impl ClassCosts {
    /// A zero-cost table (useful in tests to isolate wire physics).
    pub const FREE: ClassCosts = ClassCosts {
        entry_us: 0.0,
        o_send_us: 0.0,
        o_recv_us: 0.0,
        byte_send_ns: 0.0,
        byte_recv_ns: 0.0,
        offload: true,
    };

    /// Validates that every field is finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("entry_us", self.entry_us),
            ("o_send_us", self.o_send_us),
            ("o_recv_us", self.o_recv_us),
            ("byte_send_ns", self.byte_send_ns),
            ("byte_recv_ns", self.byte_recv_ns),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

/// The per-class cost table of a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    barrier: ClassCosts,
    bcast: ClassCosts,
    gather: ClassCosts,
    scatter: ClassCosts,
    reduce: ClassCosts,
    scan: ClassCosts,
    alltoall: ClassCosts,
    p2p: ClassCosts,
}

impl CostTable {
    /// Builds a table with the same costs for every class.
    pub fn uniform(c: ClassCosts) -> Self {
        CostTable {
            barrier: c,
            bcast: c,
            gather: c,
            scatter: c,
            reduce: c,
            scan: c,
            alltoall: c,
            p2p: c,
        }
    }

    /// Replaces the costs of one class (builder style).
    pub fn with(mut self, class: OpClass, c: ClassCosts) -> Self {
        *self.slot(class) = c;
        self
    }

    fn slot(&mut self, class: OpClass) -> &mut ClassCosts {
        match class {
            OpClass::Barrier => &mut self.barrier,
            OpClass::Bcast => &mut self.bcast,
            OpClass::Gather => &mut self.gather,
            OpClass::Scatter => &mut self.scatter,
            OpClass::Reduce => &mut self.reduce,
            OpClass::Scan => &mut self.scan,
            OpClass::Alltoall => &mut self.alltoall,
            OpClass::PointToPoint => &mut self.p2p,
        }
    }

    /// Costs for `class`.
    pub fn get(&self, class: OpClass) -> &ClassCosts {
        match class {
            OpClass::Barrier => &self.barrier,
            OpClass::Bcast => &self.bcast,
            OpClass::Gather => &self.gather,
            OpClass::Scatter => &self.scatter,
            OpClass::Reduce => &self.reduce,
            OpClass::Scan => &self.scan,
            OpClass::Alltoall => &self.alltoall,
            OpClass::PointToPoint => &self.p2p,
        }
    }

    /// Validates every class entry.
    pub fn validate(&self) -> Result<(), String> {
        for class in OpClass::COLLECTIVES
            .into_iter()
            .chain([OpClass::PointToPoint])
        {
            self.get(class)
                .validate()
                .map_err(|e| format!("{class}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip_through_from_key() {
        for op in OpClass::ALL {
            assert_eq!(OpClass::from_key(op.key()), Some(op));
        }
        assert_eq!(OpClass::from_key("nope"), None);
        assert_eq!(OpClass::from_key("Bcast"), None, "keys are lowercase");
    }

    #[test]
    fn aggregated_volume_matches_paper() {
        // Broadcast over 64 nodes of 64 KB: f = m(p-1)
        assert_eq!(OpClass::Bcast.aggregated_bytes(65_536, 64), 65_536 * 63);
        // Total exchange over 64 nodes of 64 KB: f = m·p(p-1) = 256 MB-ish
        let f = OpClass::Alltoall.aggregated_bytes(65_536, 64);
        assert_eq!(f, 65_536 * 64 * 63);
        assert!((f as f64 / 1e6 - 264.2).abs() < 0.1, "~264 MB: {f}");
        assert_eq!(OpClass::Barrier.aggregated_bytes(1024, 64), 0);
    }

    #[test]
    fn degenerate_single_node() {
        for class in OpClass::COLLECTIVES {
            assert_eq!(class.aggregated_bytes(100, 1), 0, "{class}");
        }
    }

    #[test]
    fn startup_growth_classification() {
        assert!(OpClass::Bcast.startup_is_logarithmic());
        assert!(OpClass::Barrier.startup_is_logarithmic());
        assert!(!OpClass::Alltoall.startup_is_logarithmic());
        assert!(!OpClass::Gather.startup_is_logarithmic());
        assert!(!OpClass::Scatter.startup_is_logarithmic());
    }

    #[test]
    fn table_with_overrides() {
        let special = ClassCosts {
            entry_us: 1.0,
            ..ClassCosts::FREE
        };
        let t = CostTable::uniform(ClassCosts::FREE).with(OpClass::Scan, special);
        assert_eq!(t.get(OpClass::Scan).entry_us, 1.0);
        assert_eq!(t.get(OpClass::Bcast).entry_us, 0.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validation_rejects_negative() {
        let bad = ClassCosts {
            o_send_us: -1.0,
            ..ClassCosts::FREE
        };
        assert!(bad.validate().is_err());
        let t = CostTable::uniform(ClassCosts::FREE).with(OpClass::Gather, bad);
        let err = t.validate().unwrap_err();
        assert!(err.contains("Gather"), "{err}");
    }

    #[test]
    fn display_names() {
        assert_eq!(OpClass::Alltoall.to_string(), "Total Exchange");
        assert_eq!(OpClass::Bcast.to_string(), "Broadcast");
    }

    #[test]
    fn dense_index_is_a_bijection() {
        for (i, op) in OpClass::ALL.into_iter().enumerate() {
            assert_eq!(op.index(), i);
            assert!(!op.key().is_empty());
        }
        let keys: std::collections::HashSet<_> =
            OpClass::ALL.into_iter().map(OpClass::key).collect();
        assert_eq!(keys.len(), OpClass::ALL.len(), "keys are distinct");
    }

    #[test]
    fn table1_metadata_complete() {
        for op in OpClass::COLLECTIVES
            .into_iter()
            .chain([OpClass::PointToPoint])
        {
            assert!(op.mpi_function().starts_with("MPI_"), "{op}");
            assert!(!op.table1_description().is_empty(), "{op}");
        }
        assert_eq!(OpClass::Alltoall.mpi_function(), "MPI_Alltoall");
    }
}
