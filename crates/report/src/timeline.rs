//! ASCII message timelines: one lane per rank, time flowing right.
//!
//! Renders the message trace of a collective execution the way one
//! would sketch it on a whiteboard — `>` where a rank posts a send,
//! `<` where a payload lands, `*` where both coincide — making tree
//! shapes, root serialization, and pipelining visible at a glance.

/// One message to draw: lanes and instants (any monotone unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineMessage {
    /// Sender lane.
    pub src: usize,
    /// Receiver lane.
    pub dst: usize,
    /// Posting instant.
    pub posted: f64,
    /// Delivery instant.
    pub delivered: f64,
}

/// An ASCII timeline of `lanes` ranks over a fixed-width time axis.
#[derive(Debug, Clone)]
pub struct Timeline {
    title: String,
    lanes: usize,
    width: usize,
    unit: String,
    messages: Vec<TimelineMessage>,
}

impl Timeline {
    /// Creates a timeline with `lanes` rank rows.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(title: impl Into<String>, lanes: usize) -> Self {
        assert!(lanes > 0, "at least one lane");
        Timeline {
            title: title.into(),
            lanes,
            width: 72,
            unit: "us".into(),
            messages: Vec::new(),
        }
    }

    /// Overrides the time-axis unit label (builder style; default
    /// `"us"`). The instants themselves are unit-agnostic — this only
    /// changes the scale footer, so traces rendered in different units
    /// are never silently drawn on incomparable implicit axes.
    pub fn unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = unit.into();
        self
    }

    /// Overrides the time-axis width in characters (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `width < 16`.
    pub fn width(mut self, width: usize) -> Self {
        assert!(width >= 16, "timeline too narrow");
        self.width = width;
        self
    }

    /// Adds one message (builder style). Messages naming lanes outside
    /// the timeline or with reversed instants are ignored.
    pub fn message(mut self, m: TimelineMessage) -> Self {
        if m.src < self.lanes && m.dst < self.lanes && m.delivered >= m.posted {
            self.messages.push(m);
        }
        self
    }

    /// Adds many messages (builder style).
    pub fn messages(mut self, ms: impl IntoIterator<Item = TimelineMessage>) -> Self {
        for m in ms {
            self = self.message(m);
        }
        self
    }

    /// Renders the timeline.
    pub fn render(&self) -> String {
        if self.messages.is_empty() {
            return format!("{}\n  (no messages)\n", self.title);
        }
        let t0 = self
            .messages
            .iter()
            .map(|m| m.posted)
            .fold(f64::INFINITY, f64::min);
        let t1 = self
            .messages
            .iter()
            .map(|m| m.delivered)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(t0 + 1e-9);
        let col = |t: f64| -> usize {
            let f = (t - t0) / (t1 - t0);
            ((f * (self.width - 1) as f64).round() as usize).min(self.width - 1)
        };
        let mut canvas = vec![vec![' '; self.width]; self.lanes];
        let mut put = |lane: usize, c: usize, ch: char| {
            let cell = &mut canvas[lane][c];
            *cell = if *cell == ' ' || *cell == ch { ch } else { '*' };
        };
        for m in &self.messages {
            put(m.src, col(m.posted), '>');
            put(m.dst, col(m.delivered), '<');
        }
        let mut out = format!("{}\n", self.title);
        let unit = &self.unit;
        let per_col = (t1 - t0) / (self.width - 1) as f64;
        out.push_str(&format!(
            "  time: {t0:.1} .. {t1:.1} {unit}   ('>' send posted, '<' delivery, '*' both)\n"
        ));
        for (lane, row) in canvas.iter().enumerate() {
            out.push_str(&format!(
                "  r{lane:<3} |{}|\n",
                row.iter().collect::<String>()
            ));
        }
        out.push_str(&format!("  scale: 1 column = {per_col:.3} {unit}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, dst: usize, posted: f64, delivered: f64) -> TimelineMessage {
        TimelineMessage {
            src,
            dst,
            posted,
            delivered,
        }
    }

    #[test]
    fn renders_send_and_delivery_marks() {
        let t = Timeline::new("bcast", 4)
            .message(msg(0, 2, 0.0, 50.0))
            .message(msg(0, 1, 10.0, 60.0))
            .message(msg(2, 3, 55.0, 100.0));
        let r = t.render();
        assert!(r.contains("bcast"));
        assert!(r.lines().count() == 7, "{r}");
        // Rank 0 has two send marks; rank 3 a delivery at the right edge.
        let lane0 = r.lines().nth(2).unwrap();
        assert_eq!(lane0.matches('>').count(), 2, "{lane0}");
        let lane3 = r.lines().nth(5).unwrap();
        assert!(lane3.trim_end().ends_with("<|"), "{lane3}");
    }

    #[test]
    fn invalid_messages_ignored() {
        let t = Timeline::new("x", 2)
            .message(msg(0, 9, 0.0, 1.0)) // lane out of range
            .message(msg(0, 1, 5.0, 1.0)); // reversed
        assert!(t.render().contains("(no messages)"));
    }

    #[test]
    fn collisions_become_stars() {
        let t = Timeline::new("x", 2)
            .message(msg(0, 1, 0.0, 10.0))
            .message(msg(1, 0, 0.0, 10.0));
        // Lane 0: '>' at t=0 and '<' at t=10; lane 1 the mirror image.
        let r = t.render();
        assert!(r.contains('>') && r.contains('<'));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        Timeline::new("x", 0);
    }

    #[test]
    fn axis_spans_actual_extent_with_unit_and_scale() {
        let t = Timeline::new("x", 2)
            .width(101)
            .unit("ms")
            .message(msg(0, 1, 50.0, 150.0));
        let r = t.render();
        assert!(r.contains("time: 50.0 .. 150.0 ms"), "{r}");
        // 100 ms over 100 columns: exactly 1 ms per column.
        assert!(r.contains("scale: 1 column = 1.000 ms"), "{r}");
    }
}
