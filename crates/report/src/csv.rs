//! Minimal CSV emission (RFC-4180 quoting) for measurement datasets.

/// Escapes one CSV field per RFC 4180.
pub fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders rows of fields as CSV text (with trailing newline).
pub fn render<R, F>(rows: R) -> String
where
    R: IntoIterator<Item = F>,
    F: IntoIterator<Item = String>,
{
    let mut out = String::new();
    for row in rows {
        let cells: Vec<String> = row.into_iter().map(|c| escape(&c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// CSV for a [`harness::Dataset`] in the dataset interchange format
/// (delegates to [`harness::Dataset::to_csv`], which round-trips via
/// [`harness::Dataset::from_csv`]).
pub fn dataset_csv(data: &harness::Dataset) -> String {
    data.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_unquoted() {
        assert_eq!(escape("hello"), "hello");
        assert_eq!(escape("12.5"), "12.5");
    }

    #[test]
    fn special_fields_quoted() {
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn render_rows() {
        let csv = render(vec![
            vec!["a".to_string(), "b,c".to_string()],
            vec!["1".to_string(), "2".to_string()],
        ]);
        assert_eq!(csv, "a,\"b,c\"\n1,2\n");
    }

    #[test]
    fn dataset_round_trip_shape() {
        let mut data = harness::Dataset::new();
        data.push(harness::Measurement {
            machine: "Cray T3D".into(),
            op: mpisim::OpClass::Alltoall,
            bytes: 64,
            nodes: 8,
            time_us: 123.456,
            min_time_us: 100.0,
            mean_time_us: 110.0,
            per_repetition_us: vec![123.456],
        });
        let csv = dataset_csv(&data);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "machine,operation,bytes,nodes,time_us,min_time_us,mean_time_us"
        );
        assert_eq!(
            lines.next().unwrap(),
            "Cray T3D,Total Exchange,64,8,123.456,100.000,110.000"
        );
    }
}
