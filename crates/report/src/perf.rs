//! Rendering of perfgate results: the per-collective wall-clock summary
//! table printed by `bench/perfgate` and embedded in CI logs.
//!
//! The module deliberately takes plain row structs rather than perfgate's
//! own types — `report` sits below `bench` in the dependency order, so
//! the bench pipeline adapts its results into [`PerfRow`]s.

use crate::table::Table;

/// One suite point's summary, already reduced to robust statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// Suite-point label, e.g. `sp2/alltoall`.
    pub label: String,
    /// Robust point estimate (median of per-round wall times), µs.
    pub wall_us: f64,
    /// Bootstrap confidence interval around the estimate, µs.
    pub ci_low_us: f64,
    /// Upper CI bound, µs.
    pub ci_high_us: f64,
    /// Committed baseline estimate, µs; `None` for new suite points.
    pub baseline_us: Option<f64>,
    /// Gate verdict for the point: `ok`, `faster`, `REGRESSION`, `new`.
    pub verdict: String,
}

impl PerfRow {
    /// `current / baseline` ratio; `None` without a baseline.
    pub fn ratio(&self) -> Option<f64> {
        self.baseline_us
            .filter(|&b| b > 0.0)
            .map(|b| self.wall_us / b)
    }
}

fn fmt_us(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Renders the perf summary as an aligned text table: point estimate,
/// confidence interval, baseline, relative change, and verdict per row.
pub fn render(rows: &[PerfRow]) -> String {
    let mut t = Table::new([
        "suite point",
        "wall µs",
        "95% CI",
        "baseline",
        "Δ%",
        "verdict",
    ]);
    for r in rows {
        let (base, delta) = match (r.baseline_us, r.ratio()) {
            (Some(b), Some(ratio)) => (fmt_us(b), format!("{:+.1}", (ratio - 1.0) * 100.0)),
            _ => ("-".into(), "-".into()),
        };
        t.push_row([
            r.label.clone(),
            fmt_us(r.wall_us),
            format!("[{}, {}]", fmt_us(r.ci_low_us), fmt_us(r.ci_high_us)),
            base,
            delta,
            r.verdict.clone(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str, wall: f64, baseline: Option<f64>, verdict: &str) -> PerfRow {
        PerfRow {
            label: label.into(),
            wall_us: wall,
            ci_low_us: wall * 0.95,
            ci_high_us: wall * 1.05,
            baseline_us: baseline,
            verdict: verdict.into(),
        }
    }

    #[test]
    fn renders_all_columns() {
        let text = render(&[
            row("sp2/alltoall", 1234.5, Some(1200.0), "ok"),
            row("t3d/barrier", 88.2, None, "new"),
        ]);
        assert!(text.contains("sp2/alltoall"), "{text}");
        assert!(text.contains("1234.5"), "{text}");
        assert!(text.contains("+2.9"), "{text}");
        assert!(text.contains("new"), "{text}");
        // Baseline-less rows render dashes, not zeros.
        let barrier_line = text.lines().find(|l| l.contains("t3d/barrier")).unwrap();
        assert!(barrier_line.contains('-'), "{barrier_line}");
    }

    #[test]
    fn ratio_requires_positive_baseline() {
        assert_eq!(row("x", 100.0, Some(50.0), "ok").ratio(), Some(2.0));
        assert_eq!(row("x", 100.0, Some(0.0), "ok").ratio(), None);
        assert_eq!(row("x", 100.0, None, "ok").ratio(), None);
    }

    #[test]
    fn large_values_drop_decimals() {
        let text = render(&[row("sp2/alltoall", 123_456.7, None, "ok")]);
        assert!(text.contains("123457"), "{text}");
    }
}
