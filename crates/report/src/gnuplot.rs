//! Gnuplot script emission.
//!
//! The ASCII charts are self-contained but coarse; this module emits a
//! standalone gnuplot script (data inlined via heredocs) reproducing a
//! figure as the paper printed it — log-log axes, one labeled curve per
//! machine. Feed it to `gnuplot -persist` or render to SVG/PNG.

use crate::chart::Series;

/// A gnuplot figure: titled log-log plot of named series.
#[derive(Debug, Clone)]
pub struct GnuplotFigure {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl GnuplotFigure {
    /// Creates a figure with the given title and axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        GnuplotFigure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series (builder style). Non-positive points were already
    /// dropped by [`Series::new`].
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the complete gnuplot script.
    pub fn render(&self) -> String {
        let esc = |s: &str| s.replace('"', "'");
        let mut out = String::new();
        out.push_str("#!/usr/bin/env gnuplot\n");
        out.push_str(&format!("set title \"{}\"\n", esc(&self.title)));
        out.push_str(&format!("set xlabel \"{}\"\n", esc(&self.x_label)));
        out.push_str(&format!("set ylabel \"{}\"\n", esc(&self.y_label)));
        out.push_str("set logscale xy\nset grid\nset key left top\n");
        if self.series.iter().all(|s| s.points.is_empty()) {
            out.push_str("# (no data)\n");
            return out;
        }
        let plots: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.points.is_empty())
            .map(|(i, s)| format!("$data{i} with linespoints title \"{}\"", esc(&s.label)))
            .collect();
        for (i, s) in self.series.iter().enumerate() {
            if s.points.is_empty() {
                continue;
            }
            out.push_str(&format!("$data{i} << EOD\n"));
            for &(x, y) in &s.points {
                out.push_str(&format!("{x} {y}\n"));
            }
            out.push_str("EOD\n");
        }
        out.push_str(&format!("plot {}\n", plots.join(", \\\n     ")));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_has_data_and_plot() {
        let fig = GnuplotFigure::new("Fig 1 (Broadcast)", "p", "T0 (us)")
            .series(Series::new("SP2", 'o', vec![(2.0, 85.0), (64.0, 360.0)]))
            .series(Series::new("T3D", '^', vec![(2.0, 35.0), (64.0, 150.0)]));
        let s = fig.render();
        assert!(s.contains("set logscale xy"));
        assert!(s.contains("$data0 << EOD"));
        assert!(s.contains("2 85\n"));
        assert!(s.contains("title \"T3D\""));
        assert!(s.contains("plot $data0"));
    }

    #[test]
    fn empty_figure_is_commented() {
        let s = GnuplotFigure::new("E", "x", "y").render();
        assert!(s.contains("# (no data)"));
        assert!(!s.contains("plot "));
    }

    #[test]
    fn quotes_escaped() {
        let s = GnuplotFigure::new("say \"hi\"", "x", "y")
            .series(Series::new("a\"b", 'a', vec![(1.0, 1.0)]))
            .render();
        assert!(s.contains("say 'hi'"));
        assert!(s.contains("a'b"));
    }

    #[test]
    fn nonpositive_points_already_filtered() {
        let fig = GnuplotFigure::new("T", "x", "y").series(Series::new(
            "a",
            'a',
            vec![(0.0, 5.0), (3.0, 4.0)],
        ));
        let s = fig.render();
        assert!(!s.contains("0 5"));
        assert!(s.contains("3 4"));
    }
}
