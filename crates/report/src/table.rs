//! Column-aligned plain-text tables.

/// A simple text table builder with left-aligned first column and
/// right-aligned value columns.
///
/// # Examples
///
/// ```
/// use report::table::Table;
///
/// let t = Table::new(["Operation", "SP2", "T3D"])
///     .row(["Barrier", "648", "3.07"])
///     .render();
/// assert!(t.contains("Barrier"));
/// assert!(t.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (builder style). Rows shorter than the header are
    /// padded with empty cells; longer rows are truncated.
    pub fn row<I, S>(mut self, cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push_row(cells);
        self
    }

    /// Appends a row in place.
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i].saturating_sub(c.chars().count());
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_padding() {
        let t = Table::new(["Op", "Value"])
            .row(["Broadcast", "1"])
            .row(["X", "12345"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numbers share their last column.
        let c1 = lines[2].rfind('1').unwrap();
        let c2 = lines[3].rfind('5').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let t = Table::new(["A", "B"]).row(["only"]).row(["x", "y"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let r = t.render();
        assert!(r.contains("only"));
    }

    #[test]
    fn markdown_shape() {
        let md = Table::new(["A", "B"]).row(["1", "2"]).render_markdown();
        assert!(md.starts_with("| A | B |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let r = Table::new(["H"]).render();
        assert!(r.contains('H'));
        assert_eq!(r.lines().count(), 2);
    }
}
