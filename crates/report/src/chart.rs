//! ASCII log-log line charts, used to render the paper's figures in a
//! terminal.
//!
//! Each figure of the paper is a log-scale plot of time against machine
//! size or message length, with one curve per machine. [`LogChart`]
//! reproduces that: logarithmic X and Y, one plot symbol per series,
//! collisions shown as `*`.

/// A named data series: `(x, y)` points, both positive.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot symbol.
    pub symbol: char,
    /// Data points (must be positive for log scaling).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label, symbol, and points. Non-positive
    /// points are dropped (cannot appear on a log scale).
    pub fn new(label: impl Into<String>, symbol: char, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            symbol,
            points: points
                .into_iter()
                .filter(|&(x, y)| x > 0.0 && y > 0.0)
                .collect(),
        }
    }
}

/// An ASCII chart with logarithmic axes.
#[derive(Debug, Clone)]
pub struct LogChart {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

impl LogChart {
    /// Creates a chart with the given title and axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LogChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 60,
            height: 20,
            series: Vec::new(),
        }
    }

    /// Overrides the plot area size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 8.
    pub fn size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "chart too small");
        self.width = width;
        self.height = height;
        self
    }

    /// Adds a series (builder style).
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the chart. Returns a note when no plottable data exists.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if all.is_empty() {
            return format!("{}\n  (no data)\n", self.title);
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        let (lx0, lx1) = (x0.log10(), (x1.max(x0 * 1.0001)).log10());
        let (ly0, ly1) = (y0.log10(), (y1.max(y0 * 1.0001)).log10());
        let xs = |x: f64| -> usize {
            let f = (x.log10() - lx0) / (lx1 - lx0);
            ((f * (self.width - 1) as f64).round() as usize).min(self.width - 1)
        };
        let ys = |y: f64| -> usize {
            let f = (y.log10() - ly0) / (ly1 - ly0);
            let row = (f * (self.height - 1) as f64).round() as usize;
            (self.height - 1) - row.min(self.height - 1)
        };

        let mut canvas = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                let (c, r) = (xs(x), ys(y));
                let cell = &mut canvas[r][c];
                *cell = if *cell == ' ' || *cell == s.symbol {
                    s.symbol
                } else {
                    '*'
                };
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|s| format!("{}={}", s.symbol, s.label))
            .collect();
        out.push_str(&format!("  [{}]   y: {}\n", legend.join(" "), self.y_label));
        out.push_str(&format!("  {:>9.3} +{}\n", y1, "-".repeat(self.width)));
        for (i, row) in canvas.iter().enumerate() {
            let label = if i == self.height - 1 {
                format!("{y0:>9.3}")
            } else {
                " ".repeat(9)
            };
            out.push_str(&format!(
                "  {} |{}\n",
                label,
                row.iter().collect::<String>()
            ));
        }
        out.push_str(&format!(
            "  {:>9} +{}\n  {:>9} {:<w$}{:>}\n",
            "",
            "-".repeat(self.width),
            "",
            format!("{x0}"),
            format!("{x1}  ({})", self.x_label),
            w = self.width / 2,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_symbols_and_legend() {
        let c = LogChart::new("Fig X", "p", "us")
            .series(Series::new("SP2", 'o', vec![(2.0, 10.0), (64.0, 400.0)]))
            .series(Series::new("T3D", '^', vec![(2.0, 5.0), (64.0, 100.0)]));
        let r = c.render();
        assert!(r.contains("Fig X"));
        assert!(r.contains("o=SP2"));
        assert!(r.contains('^'));
        assert!(r.lines().count() > 20);
    }

    #[test]
    fn empty_chart_is_graceful() {
        let r = LogChart::new("Empty", "x", "y").render();
        assert!(r.contains("(no data)"));
    }

    #[test]
    fn nonpositive_points_dropped() {
        let s = Series::new("bad", 'x', vec![(0.0, 1.0), (1.0, -2.0), (2.0, 3.0)]);
        assert_eq!(s.points, vec![(2.0, 3.0)]);
    }

    #[test]
    fn collisions_marked() {
        let c = LogChart::new("T", "x", "y")
            .series(Series::new("a", 'a', vec![(10.0, 10.0)]))
            .series(Series::new("b", 'b', vec![(10.0, 10.0)]));
        assert!(c.render().contains('*'));
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_panics() {
        let _ = LogChart::new("T", "x", "y").size(2, 2);
    }
}
