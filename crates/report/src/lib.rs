//! # report — tables, CSV, and ASCII charts for the reproduction
//!
//! Presentation utilities used by the `bench` binaries that regenerate
//! the paper's tables and figures:
//!
//! * [`table::Table`] — aligned text and markdown tables (Table 3,
//!   headline comparisons);
//! * [`chart::LogChart`] — log-log ASCII charts (Figs. 1–3, 5);
//! * [`csv`] — dataset export for external plotting;
//! * [`perf`] — the perfgate wall-clock summary table;
//! * [`timeline::Timeline`] — per-rank message timelines from executor
//!   traces.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod chart;
pub mod csv;
pub mod diff;
pub mod gnuplot;
pub mod metrics;
pub mod perf;
pub mod table;
pub mod timeline;

pub use chart::{LogChart, Series};
pub use gnuplot::GnuplotFigure;
pub use table::Table;
pub use timeline::{Timeline, TimelineMessage};
