//! Text rendering of metrics snapshots: the run manifest as a comment
//! header followed by a name/kind/value table, so every results
//! artifact carries the configuration that produced it.

use crate::table::Table;
use obs::{MetricsRegistry, RunManifest};

/// Renders a metrics registry as an aligned text table preceded by the
/// manifest's `# key: value` header lines.
///
/// A run whose `exec.trace.dropped` counter is nonzero silently lost
/// messages to the trace cap — every derived view (timelines, the
/// critical-path walk) is incomplete — so the table is followed by a
/// visible WARNING line instead of leaving the count buried in the rows.
///
/// # Examples
///
/// ```
/// use obs::{MetricsRegistry, RunManifest};
///
/// let mut reg = MetricsRegistry::new();
/// reg.counter("net.messages", 63);
/// let manifest = RunManifest::new("t3d").param("p", 64);
/// let text = report::metrics::render(&manifest, &reg);
/// assert!(text.contains("# machine: t3d"));
/// assert!(text.contains("net.messages"));
/// assert!(!text.contains("WARNING"));
/// ```
pub fn render(manifest: &RunManifest, reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for line in manifest.header_lines() {
        out.push_str(&line);
        out.push('\n');
    }
    let mut table = Table::new(["metric", "kind", "value"]);
    for row in reg.rows() {
        table.push_row(row);
    }
    out.push_str(&table.render());
    if let Some(dropped) = reg.get("exec.trace.dropped").and_then(|m| m.as_f64()) {
        if dropped > 0.0 {
            out.push_str(&format!(
                "\nWARNING: {dropped:.0} messages exceeded the trace cap and were dropped — \
                 timelines and critical-path decompositions are incomplete \
                 (raise ExecConfig::trace_limit)\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_manifest_header_and_all_metrics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("exec.messages", 7);
        reg.gauge("exec.completed_us", 123.456);
        reg.observe("net.link.bytes", 4096);
        let manifest = RunManifest::new("sp2")
            .param("op", "bcast")
            .param("m", 1024);
        let text = render(&manifest, &reg);
        assert!(text.contains("# machine: sp2"), "{text}");
        assert!(text.contains("# op: bcast"), "{text}");
        assert!(text.contains("exec.messages"), "{text}");
        assert!(text.contains("exec.completed_us"), "{text}");
        assert!(text.contains("histogram"), "{text}");
        // Header lines precede the table.
        let first_metric = text.find("metric").expect("table header");
        let last_comment = text.rfind('#').expect("comment header");
        assert!(last_comment < first_metric);
        assert!(!text.contains("WARNING"), "no drops, no warning: {text}");
    }

    #[test]
    fn dropped_messages_surface_as_warning() {
        let mut reg = MetricsRegistry::new();
        reg.counter("exec.trace.recorded", 100);
        reg.counter("exec.trace.dropped", 17);
        let text = render(&RunManifest::new("sp2"), &reg);
        assert!(
            text.contains("WARNING: 17 messages exceeded the trace cap"),
            "{text}"
        );
        // The warning trails the table, on its own line.
        assert!(text.trim_end().ends_with("(raise ExecConfig::trace_limit)"));
    }
}
