//! Renders `obs::diff` comparison reports as console text: the verdict
//! line, the first-divergence explanation with its causal context
//! window, and the blame-delta / metric-delta tables.

use crate::table::Table;
use obs::diff::{DiffReport, Divergence};
use obs::record::describe_event;

/// One-line verdict summary, e.g.
/// `t3d/alltoall: DIVERGENT (first at events[412])`.
pub fn verdict_line(label: &str, report: &DiffReport) -> String {
    let mut line = format!("{label}: {}", report.verdict.label());
    if let Some(first) = &report.first {
        line.push_str(&format!(" (first at {}[{}])", first.component, first.index));
    }
    if report.verdict.identical() && !report.certified {
        line.push_str(" [UNCERTIFIED]");
    }
    line
}

/// Multi-line explanation of a divergence: the first divergent entry
/// with expected-vs-got, the ranks involved, and the causal ancestor
/// window walked through the provenance edges.
pub fn divergence_text(d: &Divergence) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "first divergence: {}[{}]\n  expected: {}\n  got:      {}\n",
        d.component, d.index, d.expected, d.got
    ));
    if !d.ranks.is_empty() {
        let ranks: Vec<String> = d.ranks.iter().map(u32::to_string).collect();
        out.push_str(&format!("  ranks involved: {}\n", ranks.join(", ")));
    }
    if !d.context.is_empty() {
        out.push_str("  causal context (newest first):\n");
        for (i, ev) in d.context.iter().enumerate() {
            out.push_str(&format!("    -{:>2}  {}\n", i + 1, describe_event(ev)));
        }
    }
    out
}

/// Per-category blame-delta table (B minus A), categories with any
/// time first by |delta|.
pub fn blame_table(report: &DiffReport) -> Table {
    let mut t = Table::new(["category", "A (ns)", "B (ns)", "delta (ns)"]);
    let mut rows: Vec<_> = report.blame.iter().collect();
    rows.sort_by_key(|b| std::cmp::Reverse(b.delta_ns().abs()));
    for b in rows {
        t.push_row([
            b.category.clone(),
            b.a_ns.to_string(),
            b.b_ns.to_string(),
            format!("{:+}", b.delta_ns()),
        ]);
    }
    t.push_row([
        "elapsed".to_string(),
        report.elapsed_a_ns.to_string(),
        report.elapsed_b_ns.to_string(),
        format!("{:+}", report.elapsed_delta_ns()),
    ]);
    t
}

/// Metric-delta table; `only_significant` hides changes under the
/// noise floor.
pub fn metric_table(report: &DiffReport, only_significant: bool) -> Table {
    let mut t = Table::new(["metric", "A", "B", "rel", "significant"]);
    for m in &report.metrics {
        if only_significant && !m.significant {
            continue;
        }
        t.push_row([
            m.name.clone(),
            format!("{:.6}", m.a),
            format!("{:.6}", m.b),
            format!("{:+.1}%", (m.b - m.a) / m.a.abs().max(f64::EPSILON) * 100.0),
            if m.significant { "yes" } else { "" }.to_string(),
        ]);
    }
    t
}

/// The full console report for one comparison: verdict, certification
/// caveat, divergence explanation, and delta tables when informative.
pub fn render_report(label: &str, report: &DiffReport) -> String {
    let mut out = verdict_line(label, report);
    out.push('\n');
    if let Some(reason) = &report.uncertified_reason {
        out.push_str(&format!("  not certified: {reason}\n"));
    }
    if let Some(first) = &report.first {
        out.push_str(&divergence_text(first));
    }
    if report.verdict == obs::Verdict::Divergent && !report.blame.is_empty() {
        out.push('\n');
        out.push_str(&blame_table(report).render());
    }
    let significant = report.significant_metrics().count();
    if report.verdict == obs::Verdict::Divergent && significant > 0 {
        out.push('\n');
        out.push_str(&metric_table(report, true).render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::diff::diff;
    use obs::record::{RecEvent, RunRecord};

    fn run(extra_at: u64) -> RunRecord {
        let mut rec = RunRecord {
            elapsed_ns: 900 + extra_at,
            ..RunRecord::default()
        };
        for i in 0..4u64 {
            rec.events.push(RecEvent {
                seq: i,
                at_ns: i * 300 + if i == 3 { extra_at } else { 0 },
                kind: "rank_resume".into(),
                a: i,
                b: 0,
                parent: i.checked_sub(1),
            });
        }
        rec.blame_ns.insert("wire".into(), 900 + extra_at);
        rec.metrics.insert("exec.completed_us".into(), 0.9);
        rec
    }

    #[test]
    fn identical_report_renders_one_line() {
        let a = run(0);
        let text = render_report("t3d/bcast", &diff(&a, &a));
        assert!(text.starts_with("t3d/bcast: byte-identical"));
        assert!(!text.contains("first divergence"));
    }

    #[test]
    fn divergent_report_names_event_ranks_and_context() {
        let a = run(0);
        let b = run(50);
        let report = diff(&a, &b);
        let text = render_report("t3d/bcast", &report);
        assert!(text.contains("DIVERGENT"), "{text}");
        assert!(text.contains("first divergence: events[3]"), "{text}");
        assert!(
            text.contains("expected: rank_resume(rank=3) @ 900ns"),
            "{text}"
        );
        assert!(
            text.contains("got:      rank_resume(rank=3) @ 950ns"),
            "{text}"
        );
        assert!(text.contains("ranks involved"), "{text}");
        assert!(text.contains("causal context"), "{text}");
        assert!(text.contains("seq=2"), "{text}");
        assert!(text.contains("delta (ns)"), "blame table rendered: {text}");
    }

    #[test]
    fn uncertified_identity_is_flagged() {
        let mut a = run(0);
        a.dropped_messages = 2;
        let report = diff(&a, &a.clone());
        let text = render_report("x", &report);
        assert!(text.contains("[UNCERTIFIED]"), "{text}");
        assert!(text.contains("not certified"), "{text}");
    }
}
